// Eden demonstrates EDEN-style approximate computing (Koppula et al.,
// MICRO 2019, cited by the paper as [23]): a quantized neural network
// whose weights live in undervolted HBM tolerates bit faults gracefully,
// so it can bank the deeper power savings the unsafe region offers.
//
// A small int8 linear classifier is stored twice — once in a fault-prone
// pseudo channel and once in a robust one chosen with the fault map —
// and evaluated on synthetic data while the supply steps down. The
// robust placement keeps accuracy at deep undervolt, reproducing EDEN's
// key insight that data-to-DRAM mapping controls the energy/accuracy
// trade-off.
package main

import (
	"fmt"
	"log"

	"hbmvolt"
	"hbmvolt/internal/pattern"
	"hbmvolt/internal/prf"
)

const (
	inputDim = 64
	classes  = 8
	samples  = 400
)

// model is an int8 linear classifier: score[c] = Σ w[c][i]·x[i].
type model struct {
	weights [classes][inputDim]int8
}

// teacher builds the ground-truth model deterministically.
func teacher() *model {
	m := &model{}
	src := prf.NewSource(42)
	for c := 0; c < classes; c++ {
		for i := 0; i < inputDim; i++ {
			m.weights[c][i] = int8(src.Intn(255) - 127)
		}
	}
	return m
}

// classify returns the argmax class for input x.
func (m *model) classify(x *[inputDim]int8) int {
	best, bestScore := 0, int64(-1<<62)
	for c := 0; c < classes; c++ {
		var s int64
		for i := 0; i < inputDim; i++ {
			s += int64(m.weights[c][i]) * int64(x[i])
		}
		if s > bestScore {
			best, bestScore = c, s
		}
	}
	return best
}

// dataset generates deterministic inputs and teacher labels.
func dataset(t *model) (xs [samples][inputDim]int8, labels [samples]int) {
	src := prf.NewSource(7)
	for n := 0; n < samples; n++ {
		for i := 0; i < inputDim; i++ {
			xs[n][i] = int8(src.Intn(255) - 127)
		}
		labels[n] = t.classify(&xs[n])
	}
	return xs, labels
}

// weightWords is the number of 256-bit words the flattened model needs.
const weightWords = (classes*inputDim + 31) / 32

// wordStride spreads the weight words evenly across the pseudo channel,
// so the stored model samples the PC's whole fault geography (including
// its weak clusters) instead of only the first few rows.
func wordStride(sys *hbmvolt.System) uint64 {
	stride := sys.Board.Org.WordsPerPC / weightWords
	if stride == 0 {
		stride = 1
	}
	return stride
}

// storeWeights writes the model into a pseudo channel through its AXI
// port, 32 bytes per 256-bit word, strided across the full address
// space.
func storeWeights(sys *hbmvolt.System, port hbmvolt.PortID, m *model) error {
	p := sys.Board.Ports[port]
	stride := wordStride(sys)
	var flat []byte
	for c := 0; c < classes; c++ {
		for i := 0; i < inputDim; i++ {
			flat = append(flat, byte(m.weights[c][i]))
		}
	}
	for k := uint64(0); k*32 < uint64(len(flat)); k++ {
		var w pattern.Word
		for b := 0; b < 32; b++ {
			off := int(k)*32 + b
			if off < len(flat) {
				w[b/8] |= uint64(flat[off]) << (8 * (b % 8))
			}
		}
		if err := p.WriteWord(k*stride, w); err != nil {
			return err
		}
	}
	return nil
}

// loadWeights reads the (possibly faulty) model back.
func loadWeights(sys *hbmvolt.System, port hbmvolt.PortID) (*model, error) {
	p := sys.Board.Ports[port]
	stride := wordStride(sys)
	m := &model{}
	total := classes * inputDim
	flat := make([]byte, 0, total)
	for k := uint64(0); len(flat) < total; k++ {
		w, err := p.ReadWord(k * stride)
		if err != nil {
			return nil, err
		}
		for b := 0; b < 32 && len(flat) < total; b++ {
			flat = append(flat, byte(w[b/8]>>(8*(b%8))))
		}
	}
	k := 0
	for c := 0; c < classes; c++ {
		for i := 0; i < inputDim; i++ {
			m.weights[c][i] = int8(flat[k])
			k++
		}
	}
	return m, nil
}

func accuracy(m *model, xs *[samples][inputDim]int8, labels *[samples]int) float64 {
	hits := 0
	for n := 0; n < samples; n++ {
		if m.classify(&xs[n]) == labels[n] {
			hits++
		}
	}
	return float64(hits) / samples
}

func main() {
	sys, err := hbmvolt.New(hbmvolt.Config{Scale: 256})
	if err != nil {
		log.Fatal(err)
	}
	t := teacher()
	xs, labels := dataset(t)

	// Pick placements with the fault map: the most robust PC at 0.88 V
	// versus a known-sensitive one (PC5).
	const sensitive = hbmvolt.PortID(5)
	robust := hbmvolt.PortID(0)
	bestRate := 1.0
	for pc := 0; pc < 32; pc++ {
		r := sys.FaultMap().Rate(pc, 0.88, 0) // AnyFlip
		if r < bestRate {
			bestRate, robust = r, hbmvolt.PortID(pc)
		}
	}
	fmt.Printf("weight placements: robust PC%d vs sensitive PC%d\n\n", robust, sensitive)

	fmt.Println("V      saving  acc(robust)  acc(sensitive)")
	for _, v := range []float64{1.20, 0.98, 0.95, 0.92, 0.90, 0.88, 0.86, 0.85} {
		// (Re)store at nominal so both copies start clean, then drop.
		if err := sys.SetVoltage(hbmvolt.VNom); err != nil {
			log.Fatal(err)
		}
		if err := storeWeights(sys, robust, t); err != nil {
			log.Fatal(err)
		}
		if err := storeWeights(sys, sensitive, t); err != nil {
			log.Fatal(err)
		}
		if err := sys.SetVoltage(v); err != nil {
			log.Fatal(err)
		}
		mr, err := loadWeights(sys, robust)
		if err != nil {
			log.Fatal(err)
		}
		ms, err := loadWeights(sys, sensitive)
		if err != nil {
			log.Fatal(err)
		}
		watts, err := sys.PowerWatts()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%.2f   %.2fx   %6.1f%%      %6.1f%%\n",
			v, 17.36/watts,
			100*accuracy(mr, &xs, &labels),
			100*accuracy(ms, &xs, &labels))
	}
	fmt.Println("\nEDEN-style conclusion: placing weights on fault-map-selected PCs")
	fmt.Println("preserves accuracy while harvesting unsafe-region power savings.")
}
