package faults

// Sparse fault enumeration: instead of drawing every cell's critical
// voltage (256 hashes per word), this mode draws each row's fault count
// and fault positions directly, keyed on (seed, PC, row, rep, voltage).
// Range scans then cost O(#faults touched) rather than O(bits scanned),
// which is what makes whole-HBM Algorithm 1 sweeps at the paper's full
// memSize tractable. Above a per-segment expected-fault threshold even
// the positions stop mattering for uniform-pattern checks, and the flip
// counters are drawn in aggregate from the same binomial statistics the
// analytic path integrates (keyed additionally on the expected/stored
// word pair, so the two pattern tests draw independent measurement
// noise).
//
// Every draw here is a pure function of its key — there is no stream
// shared across voltages, patterns or pseudo channels — which is the
// property that lets the sweep scheduler shard voltage points across a
// board fleet and still produce bit-identical results at any worker
// count.
//
// The sparse device is a different realization than the bit-exact one
// (and, unlike it, re-rolls whole rows across batch reps rather than
// jittering only marginal cells), but both follow the same survival
// functions; sparse_test.go pins the agreement against analytic.go
// within Poisson bounds.

import (
	"math"
	"sort"

	"hbmvolt/internal/pattern"
	"hbmvolt/internal/prf"
)

// sparseEnumThreshold is the expected-fault count per segment above
// which CheckUniformRange stops drawing individual fault positions and
// draws aggregate flip counts instead.
const sparseEnumThreshold = 4096

// Sparse reports whether this sampler uses the O(#faults) sparse
// enumeration mode (Config.SparseEnumeration) instead of the bit-exact
// per-cell draw.
func (s *Sampler) Sparse() bool { return s.sparse }

// regionParams returns the per-cell stuck probability and its
// always-stuck-at-0 tail for cells inside or outside clusters, at the
// sampler's voltage.
func (s *Sampler) regionParams(in bool) (p, t float64) {
	p = s.m.cellSurvival(s.idx, s.v, in)
	t = math.Min(p, s.m.cellSurvival(s.idx, polarityTailV, in))
	return p, t
}

// segments splits the word window [start, end) into maximal runs that
// are entirely inside or entirely outside weak clusters, in ascending
// order. Cluster ranges are row-granular, so boundaries fall on row
// multiples (except the clamped window edges).
func (s *Sampler) segments(start, end uint64, visit func(lo, hi uint64, in bool)) {
	wpr := s.wordsPerRow
	a := start
	for _, r := range s.m.clusters[s.idx].ranges {
		lo, hi := r.Lo*wpr, r.Hi*wpr
		if hi <= a {
			continue
		}
		if lo >= end {
			break
		}
		if lo > a {
			visit(a, lo, false)
			a = lo
		}
		if hi > end {
			hi = end
		}
		if a < hi {
			visit(a, hi, true)
			a = hi
		}
		if a >= end {
			return
		}
	}
	if a < end {
		visit(a, end, false)
	}
}

// sparseRange enumerates the sparse-mode faults of [start, start+count)
// in ascending (address, bit) order.
func (s *Sampler) sparseRange(start, count uint64, visit func(addr uint64, f CellFault)) {
	end := start + count
	wpr := s.wordsPerRow
	s.segments(start, end, func(lo, hi uint64, in bool) {
		p, t := s.regionParams(in)
		if p <= 0 {
			return
		}
		for r := lo / wpr; r*wpr < hi; r++ {
			rlo, rhi := r*wpr, (r+1)*wpr
			if rlo < lo {
				rlo = lo
			}
			if rhi > hi {
				rhi = hi
			}
			s.sparseRowFaults(r, rlo, rhi, p, t, visit)
		}
	})
}

// sparseRowFaults draws row's fault count and positions and yields the
// faults whose word address falls in [lo, hi). The draws depend only on
// (seed, PC, row, rep, voltage), never on the query window or on any
// previously evaluated voltage point, so overlapping range scans — and
// sweeps sharded across a board fleet in any order — observe one
// consistent device.
func (s *Sampler) sparseRowFaults(row, lo, hi uint64, p, t float64, visit func(addr uint64, f CellFault)) {
	if lo >= hi || p <= 0 {
		return
	}
	nBits := int(s.wordsPerRow) * 256
	src := prf.NewSource(prf.Hash5(s.seed^saltSparse, uint64(s.idx), row, s.rep, s.vbits))
	k := binomialDraw(src, nBits, p)
	if k == 0 {
		return
	}
	p1Share := (p - t) * pStuckAt1 / p
	type posFault struct {
		pos int
		pol Polarity
	}
	// Each fault consumes exactly two stream words (position, polarity),
	// so the draws are pulled in blocks via Fill — identical values to
	// sequential Intn/Float64 calls, without the per-draw call setup.
	buf := make([]posFault, 0, k)
	var draws [256]uint64
	for j := 0; j < k; {
		chunk := k - j
		if chunk > len(draws)/2 {
			chunk = len(draws) / 2
		}
		d := draws[:2*chunk]
		src.Fill(d)
		for c := 0; c < chunk; c++ {
			pos := int(d[2*c] % uint64(nBits))
			pol := StuckAt0
			if prf.Float64(d[2*c+1]) < p1Share {
				pol = StuckAt1
			}
			buf = append(buf, posFault{pos, pol})
		}
		j += chunk
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i].pos < buf[j].pos })
	rowBase := row * s.wordsPerRow
	prev := -1
	for _, pf := range buf {
		if pf.pos == prev {
			continue // collision: one cell, one fault
		}
		prev = pf.pos
		addr := rowBase + uint64(pf.pos)/256
		if addr < lo || addr >= hi {
			continue
		}
		visit(addr, CellFault{Bit: pf.pos % 256, Polarity: pf.pol})
	}
}

// binomialDraw returns a deterministic Binomial(n, p) variate from src:
// Poisson inversion in the sparse regime, a clamped normal approximation
// otherwise.
func binomialDraw(src *prf.Source, n int, p float64) int {
	if p <= 0 || n <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	lam := float64(n) * p
	if lam < 32 && p < 0.1 {
		u := src.Float64()
		acc := math.Exp(-lam)
		cum := acc
		k := 0
		for u > cum && k < n {
			k++
			acc *= lam / float64(k)
			cum += acc
		}
		return k
	}
	k := int(math.Round(lam + src.Norm()*math.Sqrt(lam*(1-p))))
	if k < 0 {
		return 0
	}
	if k > n {
		return n
	}
	return k
}

// adjuster corrects a uniform expected/stored baseline for a stream of
// faulted words: each one is re-read with its overlay and its Compare
// result replaces the baseline's contribution.
type adjuster struct {
	expected, stored pattern.Word
	base             pattern.Flips
	flips            *pattern.Flips
	faulty           *uint64
}

func (a *adjuster) word(_ uint64, fs []CellFault) {
	f := pattern.Compare(a.expected, Overlay(a.stored, fs))
	a.flips.OneToZero += f.OneToZero - a.base.OneToZero
	a.flips.ZeroToOne += f.ZeroToOne - a.base.ZeroToOne
	if a.base.Total() > 0 {
		if f.Total() == 0 {
			*a.faulty-- // the overlay happened to restore the expected word
		}
	} else if f.Total() > 0 {
		*a.faulty++
	}
}

// CheckUniformRange returns the flip statistics of reading the uniform
// word stored back against the uniform word expected over the window
// [start, start+count): total 1→0 / 0→1 flips and the number of words
// with at least one flip. On the bit-exact path the result is
// bit-identical to reading and comparing every word; in sparse mode
// low-rate segments enumerate their drawn faults and high-rate segments
// draw the counters in aggregate.
func (s *Sampler) CheckUniformRange(start, count uint64, expected, stored pattern.Word) (pattern.Flips, uint64) {
	base := pattern.Compare(expected, stored)
	flips := pattern.Flips{
		OneToZero: base.OneToZero * int(count),
		ZeroToOne: base.ZeroToOne * int(count),
	}
	var faulty uint64
	if base.Total() > 0 {
		faulty = count
	}
	if count == 0 || !s.anyFaults {
		return flips, faulty
	}
	if !s.sparse {
		adj := adjuster{expected: expected, stored: stored, base: base, flips: &flips, faulty: &faulty}
		s.RangeFaultWords(start, count, adj.word)
		return flips, faulty
	}
	s.segments(start, start+count, func(lo, hi uint64, in bool) {
		s.checkSegment(lo, hi, in, expected, stored, base, &flips, &faulty)
	})
	return flips, faulty
}

// checkSegment accumulates one homogeneous segment's sparse-mode flip
// statistics into flips/faulty (which already hold the fault-free
// baseline for the whole window).
func (s *Sampler) checkSegment(lo, hi uint64, in bool, expected, stored pattern.Word, base pattern.Flips, flips *pattern.Flips, faulty *uint64) {
	p, t := s.regionParams(in)
	if p <= 0 {
		return // baseline already accounts for a fault-free segment
	}
	n := hi - lo
	if lam := float64(n) * 256 * p; lam <= sparseEnumThreshold {
		adj := adjuster{expected: expected, stored: stored, base: base, flips: flips, faulty: faulty}
		g := grouper{visit: adj.word}
		wpr := s.wordsPerRow
		for r := lo / wpr; r*wpr < hi; r++ {
			rlo, rhi := r*wpr, (r+1)*wpr
			if rlo < lo {
				rlo = lo
			}
			if rhi > hi {
				rhi = hi
			}
			s.sparseRowFaults(r, rlo, rhi, p, t, g.add)
		}
		g.flush()
		return
	}

	// Aggregate regime: draw the segment's flip totals directly. Bits
	// fall into four categories by (expected, stored) value; a
	// stuck-at-0 cell flips 1→0 wherever expected is 1, a stuck-at-1
	// cell flips 0→1 wherever expected is 0, and bits where stored
	// already mismatches expected flip unless a fault happens to mask
	// them.
	p0 := t + (p-t)*(1-pStuckAt1) // per-cell stuck-at-0 probability
	p1 := (p - t) * pStuckAt1     // per-cell stuck-at-1 probability
	n11 := expected.And(stored).OnesCount()
	n10 := expected.AndNot(stored).OnesCount()
	n01 := stored.AndNot(expected).OnesCount()
	n00 := 256 - n11 - n10 - n01
	fn := float64(n)

	src := prf.NewSource(prf.Hash5(s.seed^saltAggregate, uint64(s.idx), lo, s.rep,
		s.vbits^wordPairSig(expected, stored)))
	mean10 := fn * (float64(n11)*p0 + float64(n10)*(1-p1))
	var10 := fn * (float64(n11)*p0*(1-p0) + float64(n10)*(1-p1)*p1)
	d10 := gaussCount(src, mean10, var10, n*uint64(n11+n10))
	mean01 := fn * (float64(n01)*(1-p0) + float64(n00)*p1)
	var01 := fn * (float64(n01)*(1-p0)*p0 + float64(n00)*p1*(1-p1))
	d01 := gaussCount(src, mean01, var01, n*uint64(n01+n00))

	// Clean-word probability: every bit must read back equal to expected.
	lnq, qZero := 0.0, false
	mul := func(cnt int, term float64) {
		if cnt == 0 {
			return
		}
		if term <= 0 {
			qZero = true
			return
		}
		lnq += float64(cnt) * math.Log(term)
	}
	mul(n11, 1-p0)
	mul(n10, p1)
	mul(n01, p0)
	mul(n00, 1-p1)
	q := 0.0
	if !qZero {
		q = math.Exp(lnq)
	}
	clean := gaussCount(src, fn*q, fn*q*(1-q), n)
	fw := n - clean

	// Physical clamps: each faulty word carries 1..256 flips.
	total := d10 + d01
	if fw > total {
		fw = total
	}
	if minW := (total + 255) / 256; fw < minW {
		fw = minW
	}

	// Replace this segment's baseline contribution with the draws.
	flips.OneToZero += int(d10) - base.OneToZero*int(n)
	flips.ZeroToOne += int(d01) - base.ZeroToOne*int(n)
	if base.Total() > 0 {
		*faulty = *faulty - n + fw
	} else {
		*faulty += fw
	}
}

// wordPairSig folds an (expected, stored) word pair into one key word,
// so aggregate draws for different patterns at the same segment are
// independent rather than sharing one stream.
func wordPairSig(expected, stored pattern.Word) uint64 {
	return prf.Hash4(expected[0], expected[1], expected[2], expected[3]) ^
		prf.Mix64(prf.Hash4(stored[0], stored[1], stored[2], stored[3]))
}

// gaussCount draws a normal-approximated count with the given mean and
// variance, clamped to [0, max].
func gaussCount(src *prf.Source, mean, variance float64, max uint64) uint64 {
	if mean <= 0 {
		return 0
	}
	sd := 0.0
	if variance > 0 {
		sd = math.Sqrt(variance)
	}
	k := math.Round(mean + src.Norm()*sd)
	if k <= 0 {
		return 0
	}
	if k >= float64(max) {
		return max
	}
	return uint64(k)
}
