package chaos

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// transportClient returns a client whose round trips pass through a
// chaos.Transport on the given site.
func transportClient(site string) *http.Client {
	return &http.Client{Transport: &Transport{Site: site}}
}

func TestTransportPassthroughWhenDisarmed(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer ts.Close()

	resp, err := transportClient("t.pass").Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "ok" {
		t.Fatalf("body = %q, want ok", body)
	}
}

func TestTransportRefuse(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer ts.Close()
	defer Activate(NewPlan().Set("t.refuse", Fault{HTTP: HTTPRefuse}))()

	_, err := transportClient("t.refuse").Get(ts.URL)
	if err == nil || !strings.Contains(err.Error(), "connection refused") {
		t.Fatalf("err = %v, want connection refused", err)
	}
}

func TestTransportBlackholeHonorsContext(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer ts.Close()
	defer Activate(NewPlan().Set("t.hole", Fault{HTTP: HTTPBlackhole}))()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL, nil)
	start := time.Now()
	_, err := transportClient("t.hole").Do(req)
	if err == nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("black hole outlived the request context")
	}
}

func TestTransportSlowDelaysThenSucceeds(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "late")
	}))
	defer ts.Close()
	defer Activate(NewPlan().Set("t.slow", Fault{HTTP: HTTPSlow, Sleep: 50 * time.Millisecond}))()

	start := time.Now()
	resp, err := transportClient("t.slow").Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "late" || time.Since(start) < 50*time.Millisecond {
		t.Fatalf("body %q after %v; want late after >= 50ms", body, time.Since(start))
	}
}

func TestTransportSlowCutByDeadline(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer ts.Close()
	defer Activate(NewPlan().Set("t.slowcut", Fault{HTTP: HTTPSlow, Sleep: 10 * time.Second}))()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL, nil)
	_, err := transportClient("t.slowcut").Do(req)
	if err == nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded (hedging deadline cuts a slow link)", err)
	}
}

func TestTransportDropBodyMidRead(t *testing.T) {
	payload := strings.Repeat("x", 4096)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, payload)
	}))
	defer ts.Close()
	defer Activate(NewPlan().Set("t.drop", Fault{HTTP: HTTPDropBody, DropAfter: 100}))()

	resp, err := transportClient("t.drop").Get(ts.URL)
	if err != nil {
		t.Fatalf("headers must arrive intact: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("read err = %v, want unexpected EOF", err)
	}
	if len(body) > 100 {
		t.Fatalf("read %d bytes past the drop point (max 100)", len(body))
	}
}

// TestTransportTriggerWindow pins that After/Count windows apply to
// transport faults exactly as they do to Inject sites.
func TestTransportTriggerWindow(t *testing.T) {
	var served int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served++
		io.WriteString(w, "ok")
	}))
	defer ts.Close()
	plan := NewPlan().Set("t.window", Fault{HTTP: HTTPRefuse, After: 1, Count: 1})
	defer Activate(plan)()

	c := transportClient("t.window")
	for i, wantErr := range []bool{false, true, false} {
		resp, err := c.Get(ts.URL)
		if gotErr := err != nil; gotErr != wantErr {
			t.Fatalf("pass %d: err = %v, want error %v", i, err, wantErr)
		}
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
	if plan.Fired("t.window") != 1 || served != 2 {
		t.Fatalf("fired %d served %d, want 1 fired / 2 served", plan.Fired("t.window"), served)
	}
}
