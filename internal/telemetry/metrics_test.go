package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentInstruments hammers every instrument kind from many
// goroutines; run under -race -count=2 this pins the registry's
// thread-safety claim, and the totals pin that no increment is lost.
func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "counter")
	g := r.Gauge("g", "gauge")
	h := r.Histogram("h_seconds", "histogram", []float64{1, 2, 4})
	cv := r.CounterVec("cv_total", "labeled counter", "k")
	hv := r.HistogramVec("hv_bytes", "labeled histogram", []float64{10, 100}, "k")

	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 5))
				cv.With("a").Inc()
				cv.With("b").Add(2)
				hv.With("x").Observe(float64(i))
			}
		}(w)
	}
	wg.Wait()

	if got := c.Value(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	if got := g.Value(); got != workers*per {
		t.Errorf("gauge = %v, want %d", got, workers*per)
	}
	if got := h.Count(); got != workers*per {
		t.Errorf("histogram count = %d, want %d", got, workers*per)
	}
	if got := cv.With("a").Value(); got != workers*per {
		t.Errorf("cv[a] = %d, want %d", got, workers*per)
	}
	if got := cv.With("b").Value(); got != 2*workers*per {
		t.Errorf("cv[b] = %d, want %d", got, 2*workers*per)
	}
	if got := hv.With("x").Count(); got != workers*per {
		t.Errorf("hv[x] count = %d, want %d", got, workers*per)
	}
}

// TestConcurrentRender interleaves writes with renders: the exposition
// must stay parseable and the registry race-free while mutating.
func TestConcurrentRender(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("spin_total", "spins", "who")
	r.GaugeSampler("sampled", "sampler output", []string{"k"}, func() []Sample {
		return []Sample{{Labels: []string{"v"}, Value: 1}}
	})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(2)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				cv.With(string(rune('a' + w))).Inc()
			}
		}(w)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				var sb strings.Builder
				if _, err := r.WriteTo(&sb); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestHistogramBoundaries pins the le semantics at the bucket edges:
// an observation equal to a bound belongs to that bound's bucket,
// anything above the top bound only to +Inf.
func TestHistogramBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("edge_seconds", "edges", []float64{1, 2.5, 10})
	for _, v := range []float64{0, 1, 1.0000001, 2.5, 10, 10.5, math.Inf(1)} {
		h.Observe(v)
	}
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := strings.Join([]string{
		`edge_seconds_bucket{le="1"} 2`,       // 0, 1
		`edge_seconds_bucket{le="2.5"} 4`,     // + 1.0000001, 2.5
		`edge_seconds_bucket{le="10"} 5`,      // + 10
		`edge_seconds_bucket{le="+Inf"} 7`,    // + 10.5, +Inf
		`edge_seconds_count 7`,
	}, "\n")
	for _, line := range strings.Split(want, "\n") {
		if !strings.Contains(got, line+"\n") {
			t.Errorf("rendering missing %q:\n%s", line, got)
		}
	}
	if h.Count() != 7 {
		t.Errorf("count = %d, want 7", h.Count())
	}
}

// TestExpositionGolden pins the full rendering byte for byte: family
// ordering, series ordering, HELP/TYPE lines, label and help escaping,
// histogram cumulative buckets, sampler-backed series.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	// Registered intentionally out of name order: rendering must sort.
	r.Gauge("zz_depth", "queue depth").Set(3)
	cv := r.CounterVec("aa_requests_total", "requests with \"quotes\", a \\ backslash\nand a newline", "tier", "outcome")
	cv.With("memory", "hit").Add(7)
	cv.With("disk", `hit "quoted" \ slashed`).Inc()
	h := r.Histogram("mm_latency_seconds", "latency", []float64{0.5, 1})
	h.Observe(0.25)
	h.Observe(0.75)
	h.Observe(2)
	r.GaugeSampler("ss_peers", "per-peer state", []string{"peer"}, func() []Sample {
		return []Sample{
			{Labels: []string{"http://b:1"}, Value: 2},
			{Labels: []string{"http://a:1"}, Value: 0.5},
		}
	})

	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP aa_requests_total requests with "quotes", a \\ backslash\nand a newline
# TYPE aa_requests_total counter
aa_requests_total{tier="disk",outcome="hit \"quoted\" \\ slashed"} 1
aa_requests_total{tier="memory",outcome="hit"} 7
# HELP mm_latency_seconds latency
# TYPE mm_latency_seconds histogram
mm_latency_seconds_bucket{le="0.5"} 1
mm_latency_seconds_bucket{le="1"} 2
mm_latency_seconds_bucket{le="+Inf"} 3
mm_latency_seconds_sum 3
mm_latency_seconds_count 3
# HELP ss_peers per-peer state
# TYPE ss_peers gauge
ss_peers{peer="http://a:1"} 0.5
ss_peers{peer="http://b:1"} 2
# HELP zz_depth queue depth
# TYPE zz_depth gauge
zz_depth 3
`
	if got := sb.String(); got != want {
		t.Errorf("exposition rendering drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	// Idempotent: a second render must produce identical bytes.
	var sb2 strings.Builder
	r.WriteTo(&sb2)
	if sb2.String() != sb.String() {
		t.Error("second render differs from first")
	}
}

// TestReRegistration pins get-or-create semantics: the same name
// returns the same instrument, and a type clash panics loudly.
func TestReRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "first")
	b := r.Counter("x_total", "second help ignored")
	if a != b {
		t.Fatal("re-registering a counter must return the existing instrument")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering x_total as a gauge must panic")
		}
	}()
	r.Gauge("x_total", "clash")
}

// TestFormatValue pins the integral-without-exponent rendering that
// keeps counters readable in goldens.
func TestFormatValue(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		3:       "3",
		1000000: "1000000",
		0.5:     "0.5",
		0.0001:  "0.0001",
	}
	for v, want := range cases {
		if got := formatValue(v); got != want {
			t.Errorf("formatValue(%v) = %q, want %q", v, got, want)
		}
	}
}
