// Campaign demonstrates the declarative experiment-campaign engine on a
// cross-cutting study the hand-wired entry points made awkward: fault
// model × ECC × data pattern, in the spirit of Salami et al.'s
// ECC-undervolting evaluation and Voltron's systematic exploration of
// the voltage-reliability space. The whole experiment is one JSON
// document; the engine expands the axis cross-products, deduplicates
// identical cells through the sweep service's fingerprint keying, and
// writes a deterministic manifest plus per-scenario NDJSON artifacts.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"hbmvolt"
	"hbmvolt/internal/campaign"
)

// specJSON is the campaign as it would live in a file checked into an
// experiment repository: three scenarios, two of which expand along
// axes (sampling mode × pattern set; device seeds).
const specJSON = `{
  "name": "ecc-pattern-study",
  "description": "fault model x ECC x data pattern, plus seed sensitivity",
  "scenarios": [
    {
      "name": "patterns",
      "kind": "reliability",
      "modes": ["sparse", "exact"],
      "pattern_sets": [["all1"], ["all0"], ["all1", "all0"]],
      "grid": [0.93, 0.9, 0.87],
      "batch": 2
    },
    {
      "name": "ecc-ablation",
      "kind": "ecc-study",
      "seeds": [0, 1]
    },
    {
      "name": "atlas",
      "kind": "faultmap"
    }
  ]
}`

func main() {
	dir, err := os.MkdirTemp("", "campaign")
	if err != nil {
		log.Fatal(err)
	}
	specPath := filepath.Join(dir, "spec.json")
	if err := os.WriteFile(specPath, []byte(specJSON), 0o644); err != nil {
		log.Fatal(err)
	}

	spec, err := campaign.Load(specPath)
	if err != nil {
		log.Fatal(err)
	}
	res, err := hbmvolt.RunCampaign(context.Background(), spec, hbmvolt.CampaignOptions{Jobs: 2})
	if err != nil {
		log.Fatal(err)
	}
	outDir := filepath.Join(dir, "out")
	if err := res.WriteArtifacts(outDir); err != nil {
		log.Fatal(err)
	}

	m := res.Manifest
	fmt.Printf("campaign %s: %d cells, %d unique sweeps\n", m.Campaign, m.Cells, m.UniqueSweeps)
	for _, sm := range m.Scenarios {
		fmt.Printf("  %-14s %-11s %d cells -> %s\n", sm.Name, sm.Kind, len(sm.Cells), sm.Artifact)
	}
	fmt.Printf("artifacts in %s (re-running this program reproduces them byte for byte)\n", outDir)
}
