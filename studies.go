package hbmvolt

import (
	"fmt"
	"io"

	"hbmvolt/internal/core"
	"hbmvolt/internal/dramctl"
	"hbmvolt/internal/report"
	"hbmvolt/internal/workload"
)

// Extension studies beyond the paper's figures: temperature
// sensitivity, row-granular capacity recovery, and workload bandwidth
// characterization. Each has a Run method returning data and a Render
// method writing a table. The analytic studies route through the
// memoized rate atlas (internal/faults), so re-running them — or
// running them after the figures — reuses every grid point already
// computed for this device realization.

// TempStudy re-exports the temperature sweep result.
type TempStudy = core.TempStudy

// CapacityStudy re-exports the capacity-granularity result.
type CapacityStudy = core.CapacityStudy

// WorkloadResult re-exports one bandwidth measurement.
type WorkloadResult = workload.Result

// RunTempStudy sweeps operating temperature on this device instance.
func (s *System) RunTempStudy(temps []float64) (*TempStudy, error) {
	return core.RunTempStudy(s.atlas.Config(), temps)
}

// RenderTempStudy writes the temperature sweep as a table.
func (s *System) RenderTempStudy(w io.Writer) (*TempStudy, error) {
	study, err := s.RunTempStudy(nil)
	if err != nil {
		return nil, err
	}
	tbl := report.NewTable("temp(°C)", "Vmin", "guardband", "safe savings", "rate@0.90V")
	for _, pt := range study.Points {
		tbl.AddRow(
			fmt.Sprintf("%.0f", pt.TempC),
			fmt.Sprintf("%.2f", pt.VMin),
			fmt.Sprintf("%.1f%%", pt.GuardbandFraction*100),
			fmt.Sprintf("%.2fx", pt.SafeSavings),
			fmt.Sprintf("%.3g", pt.RateAt090),
		)
	}
	if _, err := tbl.WriteTo(w); err != nil {
		return nil, err
	}
	fmt.Fprintln(w, "temperature study — the paper characterizes at 35±1 °C; hotter parts lose guardband")
	return study, nil
}

// RunCapacityStudy compares PC-granular and row-granular fault-free
// capacity over the voltage grid (full-size device).
func (s *System) RunCapacityStudy() (*CapacityStudy, error) {
	return core.RunCapacityStudy(s.atlas, nil)
}

// RenderCapacityStudy writes the capacity comparison.
func (s *System) RenderCapacityStudy(w io.Writer) (*CapacityStudy, error) {
	study, err := s.RunCapacityStudy()
	if err != nil {
		return nil, err
	}
	tbl := report.NewTable("V", "fault-free PCs (GB)", "fault-free rows (GB)", "recovered")
	for _, pt := range study.Points {
		if int(pt.Volts*1000)%20 != 0 {
			continue // 20 mV display steps keep the table short
		}
		rec := "-"
		if pt.RowGranularBytes > pt.PCGranularBytes {
			rec = fmt.Sprintf("+%.1f GB", (pt.RowGranularBytes-pt.PCGranularBytes)/(1<<30))
		}
		tbl.AddRow(
			fmt.Sprintf("%.2f", pt.Volts),
			fmt.Sprintf("%.2f", pt.PCGranularBytes/(1<<30)),
			fmt.Sprintf("%.2f", pt.RowGranularBytes/(1<<30)),
			rec,
		)
	}
	if _, err := tbl.WriteTo(w); err != nil {
		return nil, err
	}
	fmt.Fprintln(w, "capacity study — row-granular fault maps recover memory that whole-PC")
	fmt.Fprintln(w, "exclusion discards, because faults concentrate in ~8% of rows (§III-B)")
	return study, nil
}

// RunBandwidthStudy drives the standard workload suite through the
// DRAM timing model of one pseudo channel.
func (s *System) RunBandwidthStudy() ([]WorkloadResult, error) {
	return workload.RunSuite(dramctl.DefaultTiming(), dramctl.DefaultGeometry, 1<<20, 1<<17)
}

// RenderBandwidthStudy writes the per-workload sustained bandwidth.
func (s *System) RenderBandwidthStudy(w io.Writer) ([]WorkloadResult, error) {
	results, err := s.RunBandwidthStudy()
	if err != nil {
		return nil, err
	}
	peak := dramctl.DefaultTiming().PeakBandwidthGBs()
	tbl := report.NewTable("workload", "GB/s per PC", "x32 PCs", "efficiency", "row hits")
	for _, r := range results {
		tbl.AddRow(
			r.Name,
			fmt.Sprintf("%.2f", r.BandwidthGBs),
			fmt.Sprintf("%.0f", r.BandwidthGBs*32),
			fmt.Sprintf("%.0f%%", r.Efficiency*100),
			fmt.Sprintf("%.0f%%", r.RowHitRate*100),
		)
	}
	if _, err := tbl.WriteTo(w); err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "pin bandwidth %.2f GB/s per PC (%.0f GB/s x32, paper theoretical 429)\n", peak, peak*32)
	fmt.Fprintln(w, "undervolting saves the same factor for every workload — power scales with V²,")
	fmt.Fprintln(w, "not with achieved bandwidth (§III-A1)")
	return results, nil
}
