// Command hbmvoltd serves Algorithm 1 reliability sweeps and Fig. 2/3
// power sweeps over HTTP — the sweep-as-a-service daemon on top of the
// board-fleet scheduler.
//
// Usage:
//
//	hbmvoltd [flags]
//
// API (JSON over HTTP; see internal/service):
//
//	POST   /v1/sweeps             submit {"kind":"reliability"|"power", ...}
//	GET    /v1/sweeps/{id}        status + result
//	GET    /v1/sweeps/{id}/result raw result payload (byte-stable)
//	GET    /v1/sweeps/{id}/events NDJSON progress stream
//	DELETE /v1/sweeps/{id}        cancel
//	GET    /healthz               liveness + statistics
//
// Campaign routes (see internal/campaign) fan declarative multi-
// scenario experiment specs into the same job manager:
//
//	POST   /v1/campaigns          submit a spec or {"builtin":"paper-repro"}
//	GET    /v1/campaigns          list campaign runs
//	GET    /v1/campaigns/{id}     status (+ manifest when done)
//	DELETE /v1/campaigns/{id}     cancel remaining cells
//
// With -pprof, net/http/pprof is mounted under /debug/pprof/ so
// campaign-scale CPU and heap profiles can be captured in place:
//
//	go tool pprof http://127.0.0.1:8023/debug/pprof/profile?seconds=30
//
// Identical requests — concurrent or repeated, standalone or inside a
// campaign — coalesce into a single computation and return
// bit-identical payloads; see the cache-key and determinism contract in
// internal/service.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"hbmvolt/internal/campaign"
	"hbmvolt/internal/service"
)

var (
	flagAddr    = flag.String("addr", "127.0.0.1:8023", "listen address")
	flagWorkers = flag.Int("workers", 2, "concurrent sweep jobs")
	flagQueue   = flag.Int("queue", 16, "queued-sweep backlog bound (extra submissions get 503)")
	flagCache   = flag.Int("cache", 256, "result cache entries (LRU)")
	flagMaxJobs = flag.Int("max-jobs", 1024, "retained job records (oldest terminal jobs evicted)")
	flagFleet   = flag.Int("j", runtime.GOMAXPROCS(0), "default board-fleet size per sharded sweep (request \"workers\" overrides)")
	flagPprof   = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (off by default; enables capturing CPU/heap profiles of campaign-scale runs in place)")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hbmvoltd:", err)
		os.Exit(1)
	}
}

func run() error {
	if *flagWorkers < 1 || *flagQueue < 1 || *flagCache < 1 || *flagMaxJobs < 1 || *flagFleet < 1 {
		return errors.New("-workers, -queue, -cache, -max-jobs and -j must all be >= 1")
	}
	srv := service.New(service.Config{
		Workers:      *flagWorkers,
		QueueDepth:   *flagQueue,
		CacheEntries: *flagCache,
		MaxJobs:      *flagMaxJobs,
		FleetSize:    *flagFleet,
	})
	defer srv.Close()

	// Campaign routes share the sweep manager: campaign cells and ad-hoc
	// sweeps coalesce in one queue and result cache.
	mux := http.NewServeMux()
	campaign.NewAPI(srv.Manager()).Register(mux)
	mux.Handle("/", srv)

	// Profiling routes are opt-in: the handlers are registered on this
	// mux explicitly (never on http.DefaultServeMux), so without -pprof
	// nothing introspectable is exposed.
	if *flagPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}

	httpSrv := &http.Server{
		Addr:              *flagAddr,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		log.Printf("hbmvoltd listening on %s (%d workers, queue %d, cache %d, fleet %d)",
			*flagAddr, *flagWorkers, *flagQueue, *flagCache, *flagFleet)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Print("hbmvoltd shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	return nil
}
