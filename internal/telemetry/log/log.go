// Package log is the repo's structured leveled logger: one JSON
// object per line, deterministic field ordering (ts, level, msg,
// bound fields, then call-site fields) so tests can assert on fields
// instead of grepping substrings. Import it aliased as tlog.
//
// A nil *Logger is a valid no-op sink: library code can log
// unconditionally and let the owner decide whether a logger exists.
package log

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hbmvolt/internal/telemetry"
)

// Level orders log severities.
type Level int32

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String returns the level's lowercase name.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return fmt.Sprintf("level(%d)", int32(l))
	}
}

// ParseLevel parses a level name (case-insensitive).
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("log: unknown level %q (want debug|info|warn|error)", s)
}

// Field is one key/value pair on a log line.
type Field struct {
	Key   string
	Value any
}

// F builds a Field.
func F(key string, value any) Field { return Field{Key: key, Value: value} }

// Err builds the conventional error field; a nil error yields "".
func Err(err error) Field {
	if err == nil {
		return Field{Key: "err", Value: ""}
	}
	return Field{Key: "err", Value: err.Error()}
}

// sink is the shared write end: all Loggers derived from one New call
// serialize through the same mutex and level gate.
type sink struct {
	mu    sync.Mutex
	w     io.Writer
	level atomic.Int32
	now   func() time.Time // injectable for tests
}

// Logger emits structured lines at or above its sink's level. Derive
// scoped loggers with With/WithTrace; they share the sink.
type Logger struct {
	s      *sink
	fields []Field
}

// New builds a logger writing JSON lines to w at the given level.
func New(w io.Writer, level Level) *Logger {
	s := &sink{w: w, now: time.Now}
	s.level.Store(int32(level))
	return &Logger{s: s}
}

// SetLevel changes the level for this logger and everything sharing
// its sink.
func (l *Logger) SetLevel(level Level) {
	if l == nil {
		return
	}
	l.s.level.Store(int32(level))
}

// Enabled reports whether lines at level would be written.
func (l *Logger) Enabled(level Level) bool {
	return l != nil && int32(level) >= l.s.level.Load()
}

// With returns a logger that stamps the given fields on every line,
// after any already-bound fields.
func (l *Logger) With(fields ...Field) *Logger {
	if l == nil || len(fields) == 0 {
		return l
	}
	bound := make([]Field, 0, len(l.fields)+len(fields))
	bound = append(bound, l.fields...)
	bound = append(bound, fields...)
	return &Logger{s: l.s, fields: bound}
}

// WithTrace binds the context's trace ID (field "trace") when one is
// present, so every line of a request-scoped logger carries it.
func (l *Logger) WithTrace(ctx context.Context) *Logger {
	if l == nil {
		return nil
	}
	if id := telemetry.TraceOf(ctx); id != "" {
		return l.With(F("trace", id))
	}
	return l
}

// Debug logs at debug level.
func (l *Logger) Debug(msg string, fields ...Field) { l.log(LevelDebug, msg, fields) }

// Info logs at info level.
func (l *Logger) Info(msg string, fields ...Field) { l.log(LevelInfo, msg, fields) }

// Warn logs at warn level.
func (l *Logger) Warn(msg string, fields ...Field) { l.log(LevelWarn, msg, fields) }

// Error logs at error level.
func (l *Logger) Error(msg string, fields ...Field) { l.log(LevelError, msg, fields) }

// Printf is a compatibility adapter for func(string, ...any) log
// hooks: the formatted message becomes an info-level structured line.
func (l *Logger) Printf(format string, args ...any) {
	l.log(LevelInfo, fmt.Sprintf(format, args...), nil)
}

// log renders one line. Field order is fixed: ts, level, msg, bound
// fields, call fields — duplicate keys are emitted as given (last one
// wins in most JSON decoders), keeping rendering allocation-light and
// deterministic.
func (l *Logger) log(level Level, msg string, fields []Field) {
	if !l.Enabled(level) {
		return
	}
	var b bytes.Buffer
	b.WriteString(`{"ts":`)
	writeJSON(&b, l.s.now().UTC().Format(time.RFC3339Nano))
	b.WriteString(`,"level":`)
	writeJSON(&b, level.String())
	b.WriteString(`,"msg":`)
	writeJSON(&b, msg)
	for _, f := range l.fields {
		writeField(&b, f)
	}
	for _, f := range fields {
		writeField(&b, f)
	}
	b.WriteString("}\n")

	l.s.mu.Lock()
	defer l.s.mu.Unlock()
	l.s.w.Write(b.Bytes())
}

func writeField(b *bytes.Buffer, f Field) {
	b.WriteByte(',')
	writeJSON(b, f.Key)
	b.WriteByte(':')
	writeJSON(b, f.Value)
}

func writeJSON(b *bytes.Buffer, v any) {
	enc, err := json.Marshal(v)
	if err != nil {
		enc, _ = json.Marshal(fmt.Sprint(v))
	}
	b.Write(enc)
}
