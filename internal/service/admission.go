package service

import (
	"math"
	"sort"
	"sync"
	"time"

	"hbmvolt/internal/telemetry"
)

// latencyTracker keeps a sliding window of recent job durations and
// answers the question overload handling needs: "how long until a queue
// slot frees up?" — the observed median job latency, not a guess.
type latencyTracker struct {
	mu sync.Mutex
	// window is a ring of the most recent job durations.
	window []time.Duration
	next   int
	filled bool
}

// latencyWindow is the number of recent jobs the median is computed
// over — large enough to smooth one outlier sweep, small enough to
// track a workload shift within a few dozen jobs.
const latencyWindow = 64

func newLatencyTracker() *latencyTracker {
	return &latencyTracker{window: make([]time.Duration, latencyWindow)}
}

// Observe records one completed job's duration.
func (t *latencyTracker) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.window[t.next] = d
	t.next++
	if t.next == len(t.window) {
		t.next = 0
		t.filled = true
	}
}

// Median returns the median duration over the window, or 0 before any
// observation (callers supply their own floor).
func (t *latencyTracker) Median() time.Duration {
	t.mu.Lock()
	n := t.next
	if t.filled {
		n = len(t.window)
	}
	if n == 0 {
		t.mu.Unlock()
		return 0
	}
	samples := make([]time.Duration, n)
	copy(samples, t.window[:n])
	t.mu.Unlock()
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	return samples[n/2]
}

// retryAfterSeconds converts "depth jobs ahead of you, served by
// workers workers, at median latency per job" into the whole seconds a
// client should wait before retrying: the expected time for the backlog
// to drain, floored at 1 s (the protocol's minimum useful hint) and
// capped at 5 min (past that the number is noise, not guidance).
func retryAfterSeconds(depth, workers int, median time.Duration) int {
	if workers < 1 {
		workers = 1
	}
	if median <= 0 {
		median = time.Second // no observations yet: the old hardcoded hint
	}
	if depth < 1 {
		depth = 1
	}
	wait := time.Duration(math.Ceil(float64(depth)/float64(workers))) * median
	secs := int(math.Ceil(wait.Seconds()))
	if secs < 1 {
		secs = 1
	}
	if secs > 300 {
		secs = 300
	}
	return secs
}

// rateLimiter is a per-client token-bucket admission gate: each client
// key (the request's remote host, or its X-Client-ID header when set)
// gets a bucket of Burst tokens refilling at Rate tokens/second. A
// submission costs one token; an empty bucket means 429 with a
// Retry-After telling the client when the next token lands.
//
// Buckets for idle clients are evicted once the map exceeds maxClients,
// so an address-churning flood cannot grow memory without bound (a
// fresh bucket starts full, so eviction can only ever under-throttle,
// never lock a legitimate client out).
type rateLimiter struct {
	rate  float64 // tokens per second
	burst float64

	mu      sync.Mutex
	buckets map[string]*bucket
	// denied is the hbmvolt_admission_rejected_total{reason="rate"}
	// counter — /healthz reads the same series through Denied().
	denied *telemetry.Counter

	// now is the clock, injectable in tests.
	now func() time.Time
}

type bucket struct {
	tokens float64
	last   time.Time
}

// maxClients bounds the bucket map.
const maxClients = 16384

// newRateLimiter builds a limiter; rate <= 0 disables limiting (Allow
// always succeeds). denied is the rejection counter to increment on
// every refused submission; nil gets a private unregistered counter.
func newRateLimiter(rate float64, burst int, denied *telemetry.Counter) *rateLimiter {
	if burst < 1 {
		burst = 1
	}
	if denied == nil {
		denied = &telemetry.Counter{}
	}
	return &rateLimiter{
		rate:    rate,
		burst:   float64(burst),
		buckets: make(map[string]*bucket),
		denied:  denied,
		now:     time.Now,
	}
}

// Allow spends one token from client's bucket. When the bucket is
// empty it reports false plus the seconds (whole, >= 1) until a token
// is available.
func (l *rateLimiter) Allow(client string) (ok bool, retryAfter int) {
	if l == nil || l.rate <= 0 {
		return true, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	b, found := l.buckets[client]
	if !found {
		if len(l.buckets) >= maxClients {
			l.evictIdleLocked(now)
		}
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[client] = b
	} else {
		b.tokens = math.Min(l.burst, b.tokens+now.Sub(b.last).Seconds()*l.rate)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	l.denied.Inc()
	need := (1 - b.tokens) / l.rate
	secs := int(math.Ceil(need))
	if secs < 1 {
		secs = 1
	}
	return false, secs
}

// Denied returns the cumulative rejected-submission count, read from
// the same counter /metrics renders.
func (l *rateLimiter) Denied() uint64 {
	if l == nil {
		return 0
	}
	return l.denied.Value()
}

// evictIdleLocked drops buckets that have been idle long enough to have
// refilled completely — forgetting them is behaviorally invisible.
func (l *rateLimiter) evictIdleLocked(now time.Time) {
	full := time.Duration(l.burst / l.rate * float64(time.Second))
	for key, b := range l.buckets {
		if now.Sub(b.last) > full {
			delete(l.buckets, key)
		}
	}
	// Pathological case: every bucket is hot. Admission correctness
	// (fresh buckets start full) lets us drop arbitrary entries rather
	// than grow without bound.
	for key := range l.buckets {
		if len(l.buckets) < maxClients {
			break
		}
		delete(l.buckets, key)
	}
}
