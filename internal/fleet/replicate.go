package fleet

import "sync/atomic"

// Hot-payload replication: when a forward succeeds, the requester
// already holds the owner's payload, verified against the SHA-256 the
// wire carried (X-Hbmvolt-Payload-Sha256, checked by service.Client).
// Admitting it for write-through to the requester's own durable cache
// tier turns a later owner loss into a local disk hit — sweep_runs
// stays 0 — instead of a full recompute, which is the single biggest
// degraded-serve win available (the physics evaluation dominates sweep
// cost).
//
// The forwarder decides admission (it sees the payload and owns the
// budget); the service manager performs the write (it owns the cache
// tiers), honoring ServeInfo.Replicated: admitted payloads go through
// every tier, the rest stay memory-only.

// replicator is the admission ledger: a byte budget and the counters
// /healthz's replication block and the hbmvolt_fleet_replicated_*
// families render.
type replicator struct {
	// budget is the total bytes of remote payloads this node will admit
	// for durable write-through (<0 = replication disabled).
	budget   int64
	bytes    atomic.Int64
	payloads atomic.Uint64
	skipped  atomic.Uint64
}

// admit charges n bytes against the budget, reporting whether the
// payload should be written through to the durable tier. First-come,
// first-admitted; a payload that would overflow the budget is skipped
// (smaller later payloads may still fit the remainder).
func (r *replicator) admit(n int64) bool {
	if r.budget < 0 {
		r.skipped.Add(1)
		return false
	}
	for {
		cur := r.bytes.Load()
		if cur+n > r.budget {
			r.skipped.Add(1)
			return false
		}
		if r.bytes.CompareAndSwap(cur, cur+n) {
			r.payloads.Add(1)
			return true
		}
	}
}
