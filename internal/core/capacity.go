package core

import (
	"errors"
	"math"

	"hbmvolt/internal/faults"
)

// CapacityPoint compares fault-free capacity at one voltage under two
// allocation granularities.
type CapacityPoint struct {
	Volts float64
	// PCGranularBytes is the capacity from whole fault-free pseudo
	// channels (the Fig. 6 / §III-C view).
	PCGranularBytes float64
	// RowGranularBytes is the expected capacity from fault-free 1 KB
	// rows: since faults concentrate in weak clusters, most rows of
	// even a "faulty" PC are still clean.
	RowGranularBytes float64
}

// CapacityStudy quantifies the capacity-recovery extension of the
// paper's trade-off: row-granular fault maps recover most of the memory
// that PC-granular exclusion throws away, because faults cluster in
// small regions (§III-B).
type CapacityStudy struct {
	Points []CapacityPoint
	// TotalBytes is the device capacity.
	TotalBytes float64
}

// RunCapacityStudy evaluates both granularities across the grid. The
// whole-PC exclusion side is served from the memoized rate atlas (shared
// with Fig. 4-6 over the same grid); the row-granular side needs the
// two-region decomposition, which is recomputed per call.
func RunCapacityStudy(fm *faults.Model, grid []float64) (*CapacityStudy, error) {
	if fm == nil {
		return nil, errors.New("core: fault model is nil")
	}
	if grid == nil {
		grid = faults.PaperGrid()
	}
	geo := fm.Geometry()
	bytesPerPC := float64(geo.WordsPerPC) * 32
	bitsPerRow := float64(geo.WordsPerRow) * 256

	study := &CapacityStudy{TotalBytes: bytesPerPC * faults.NumPCs}
	for _, v := range grid {
		pt := CapacityPoint{Volts: v}
		for s := 0; s < faults.NumStacks; s++ {
			for pc := 0; pc < faults.PCsPerStack; pc++ {
				if fm.PCFaultFree(s, pc, v) {
					pt.PCGranularBytes += bytesPerPC
				}
				in, out, cov := fm.RegionRates(s, pc, v, faults.AnyFlip)
				// Expected fraction of rows with zero faulty cells
				// (Poisson approximation per row).
				cleanFrac := cov*math.Exp(-bitsPerRow*in) + (1-cov)*math.Exp(-bitsPerRow*out)
				pt.RowGranularBytes += bytesPerPC * cleanFrac
			}
		}
		study.Points = append(study.Points, pt)
	}
	return study, nil
}

// At returns the point for the given voltage, or nil.
func (s *CapacityStudy) At(v float64) *CapacityPoint {
	for i := range s.Points {
		if s.Points[i].Volts == v {
			return &s.Points[i]
		}
	}
	return nil
}
