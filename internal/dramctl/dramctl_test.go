package dramctl

import (
	"math"
	"testing"
)

func TestTimingValidate(t *testing.T) {
	if err := DefaultTiming().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultTiming()
	bad.ClockMHz = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero clock accepted")
	}
	bad = DefaultTiming()
	bad.TCCDL, bad.TCCDS = 1, 3
	if err := bad.Validate(); err == nil {
		t.Fatal("TCCDL < TCCDS accepted")
	}
	bad = DefaultTiming()
	bad.TRFCNs = bad.TREFINs + 1
	if err := bad.Validate(); err == nil {
		t.Fatal("tRFC >= tREFI accepted")
	}
}

// The clock choice must reproduce the paper's 429 GB/s theoretical
// bandwidth across 32 pseudo channels.
func TestPeakBandwidthMatchesPaper(t *testing.T) {
	perPC := DefaultTiming().PeakBandwidthGBs()
	total := perPC * 32
	if math.Abs(total-429) > 1 {
		t.Fatalf("32-PC peak = %v GB/s, want ≈429 (paper §II-C)", total)
	}
}

func TestNewValidatesGeometry(t *testing.T) {
	if _, err := New(DefaultTiming(), Geometry{}); err == nil {
		t.Fatal("empty geometry accepted")
	}
	if _, err := New(DefaultTiming(), DefaultGeometry); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialStreamEfficiency(t *testing.T) {
	// A sequential read stream with bank interleaving should sustain
	// >85% of pin bandwidth — the DRAM is not the platform bottleneck.
	bw, st, err := SustainedBandwidthGBs(DefaultTiming(), DefaultGeometry, 1<<18, Read)
	if err != nil {
		t.Fatal(err)
	}
	peak := DefaultTiming().PeakBandwidthGBs()
	eff := bw / peak
	if eff < 0.85 || eff > 1.0 {
		t.Fatalf("sequential efficiency = %v (bw %v of %v GB/s)", eff, bw, peak)
	}
	if st.RowHitRate() < 0.9 {
		t.Fatalf("row hit rate = %v for sequential stream", st.RowHitRate())
	}
	if st.Refreshes == 0 {
		t.Fatal("no refreshes over a long stream")
	}
}

func TestRowMissPenalty(t *testing.T) {
	c, err := New(DefaultTiming(), DefaultGeometry)
	if err != nil {
		t.Fatal(err)
	}
	// Two accesses to different rows of the same bank: second must pay
	// precharge + activate.
	rowStride := DefaultGeometry.WordsPerRow * uint64(DefaultGeometry.BankGroups*DefaultGeometry.BanksPerGroup)
	first := c.Access(0, Read)
	second := c.Access(rowStride, Read) // same bank, next row
	gap := second - first
	min := float64(DefaultTiming().TRP + DefaultTiming().TRCDRD)
	if gap < min {
		t.Fatalf("same-bank row switch gap %v cycles, want >= %v", gap, min)
	}
	if c.Stats().RowMisses != 2 {
		t.Fatalf("row misses = %d, want 2 (both cold)", c.Stats().RowMisses)
	}
}

func TestRowHitFastPath(t *testing.T) {
	c, err := New(DefaultTiming(), DefaultGeometry)
	if err != nil {
		t.Fatal(err)
	}
	c.Access(0, Read)
	before := c.Stats().RowHits
	// Stride of BankGroups stays in the same bank and row (next column).
	done1 := c.Access(4, Read)
	done2 := c.Access(8, Read)
	if c.Stats().RowHits != before+2 {
		t.Fatal("same-row accesses not counted as hits")
	}
	// Back-to-back hits are spaced by the burst length only.
	if gap := done2 - done1; gap > float64(DefaultTiming().TCCDL+DefaultTiming().TBurst) {
		t.Fatalf("hit-to-hit gap %v cycles", gap)
	}
}

func TestTurnaroundPenalty(t *testing.T) {
	tm := DefaultTiming()
	c, err := New(tm, DefaultGeometry)
	if err != nil {
		t.Fatal(err)
	}
	c.Access(0, Read)
	rd := c.Access(1, Read)
	wr := c.Access(2, Write) // read→write turnaround
	if wr-rd < float64(tm.TRTW) {
		t.Fatalf("read→write gap %v below TRTW %d", wr-rd, tm.TRTW)
	}
}

func TestMonotonicCompletion(t *testing.T) {
	c, err := New(DefaultTiming(), DefaultGeometry)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for addr := uint64(0); addr < 10000; addr++ {
		done := c.Access(addr*17%4096, Read) // scattered pattern
		if done <= prev {
			t.Fatalf("completion went backwards at %d: %v <= %v", addr, done, prev)
		}
		prev = done
	}
}

func TestRefreshOverheadBounded(t *testing.T) {
	// Refresh steals tRFC/tREFI ≈ 6.7% of time at most.
	bw, st, err := SustainedBandwidthGBs(DefaultTiming(), DefaultGeometry, 1<<19, Write)
	if err != nil {
		t.Fatal(err)
	}
	if st.Refreshes == 0 {
		t.Fatal("expected refreshes")
	}
	peak := DefaultTiming().PeakBandwidthGBs()
	if bw < peak*0.8 {
		t.Fatalf("write stream bw %v too low vs peak %v", bw, peak)
	}
}

func TestRandomStreamSlowerThanSequential(t *testing.T) {
	seq, _, err := SustainedBandwidthGBs(DefaultTiming(), DefaultGeometry, 1<<16, Read)
	if err != nil {
		t.Fatal(err)
	}
	// Random rows in one bank: worst case.
	c, err := New(DefaultTiming(), DefaultGeometry)
	if err != nil {
		t.Fatal(err)
	}
	nb := uint64(DefaultGeometry.BankGroups * DefaultGeometry.BanksPerGroup)
	rowStride := DefaultGeometry.WordsPerRow * nb
	for i := uint64(0); i < 1<<12; i++ {
		c.Access(i%2*rowStride*7, Read) // ping-pong rows, same bank
	}
	sec := c.ElapsedSeconds()
	worst := float64(1<<12) * 32 / sec / 1e9
	if worst >= seq {
		t.Fatalf("row ping-pong bw %v not below sequential %v", worst, seq)
	}
}

func TestStatsAccounting(t *testing.T) {
	c, err := New(DefaultTiming(), DefaultGeometry)
	if err != nil {
		t.Fatal(err)
	}
	const n = 1000
	for addr := uint64(0); addr < n; addr++ {
		c.Access(addr, Read)
	}
	st := c.Stats()
	if st.Accesses != n {
		t.Fatalf("accesses = %d", st.Accesses)
	}
	if st.RowHits+st.RowMisses != n {
		t.Fatal("hits+misses != accesses")
	}
	if st.BusUtilization() <= 0 || st.BusUtilization() > 1 {
		t.Fatalf("bus utilization = %v", st.BusUtilization())
	}
}

func BenchmarkAccessSequential(b *testing.B) {
	c, err := New(DefaultTiming(), DefaultGeometry)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i), Read)
	}
}
