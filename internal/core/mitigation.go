package core

import (
	"errors"

	"hbmvolt/internal/ecc"
	"hbmvolt/internal/faults"
)

// ECCPoint is the mitigation analysis at one voltage: how a SEC-DED
// Hamming(72,64) layer transforms the raw stuck-cell population.
type ECCPoint struct {
	Volts float64
	// RawCellRate is the device-average faulty-cell fraction.
	RawCellRate float64
	// ExpectedRawFaults is the expected device-wide faulty-cell count.
	ExpectedRawFaults float64
	// ExpectedCorrectable is the expected number of codewords with
	// exactly one faulty bit (repaired transparently).
	ExpectedCorrectable float64
	// ExpectedUncorrectable is the expected number of codewords with two
	// or more faulty bits (data loss despite ECC).
	ExpectedUncorrectable float64
}

// ECCStudy compares raw and ECC-protected operation across the voltage
// grid — the mitigation ablation motivated by the paper's related work
// on built-in-ECC absorption of undervolting faults.
type ECCStudy struct {
	Points []ECCPoint
	// VMinRaw is the lowest voltage with (expected) zero raw faults.
	VMinRaw float64
	// VMinECC is the lowest voltage with fewer than 0.5 expected
	// uncorrectable codewords device-wide: how far ECC extends the safe
	// region.
	VMinECC float64
	// ExtraSafeSavings is the power saving factor at VMinECC relative to
	// nominal, versus the raw guardband's (VNom/VMinRaw)².
	ExtraSafeSavings float64
}

// RunECCStudy evaluates the mitigation analytically. Cluster-local fault
// concentration is respected: a codeword inside a weak cluster sees the
// cluster's elevated rate, which is what makes double faults (ECC
// failures) appear earlier than a uniform model would predict.
func RunECCStudy(fm *faults.Model, grid []float64) (*ECCStudy, error) {
	if fm == nil {
		return nil, errors.New("core: fault model is nil")
	}
	if grid == nil {
		grid = faults.PaperGrid()
	}
	bitsPerPC := fm.Geometry().BitsPerPC()
	wordsPerPC := bitsPerPC / ecc.CodeBits

	study := &ECCStudy{VMinRaw: faults.VNom, VMinECC: faults.VNom}
	rawClean, eccClean := true, true
	for _, v := range grid {
		pt := ECCPoint{Volts: v}
		for s := 0; s < faults.NumStacks; s++ {
			for pc := 0; pc < faults.PCsPerStack; pc++ {
				rate := fm.CellRate(s, pc, v, faults.AnyFlip)
				pt.RawCellRate += rate / faults.NumPCs
				pt.ExpectedRawFaults += rate * bitsPerPC
				in, out, cov := fm.RegionRates(s, pc, v, faults.AnyFlip)
				pt.ExpectedCorrectable += wordsPerPC *
					(cov*ecc.CorrectableProb(in) + (1-cov)*ecc.CorrectableProb(out))
				pt.ExpectedUncorrectable += wordsPerPC *
					(cov*ecc.WordFailureProb(in) + (1-cov)*ecc.WordFailureProb(out))
			}
		}
		study.Points = append(study.Points, pt)

		if v >= faults.VCritical {
			if rawClean && pt.ExpectedRawFaults < 0.5 {
				study.VMinRaw = v
			} else {
				rawClean = false
			}
			if eccClean && pt.ExpectedUncorrectable < 0.5 {
				study.VMinECC = v
			} else {
				eccClean = false
			}
		}
	}
	study.ExtraSafeSavings = (faults.VNom / study.VMinECC) * (faults.VNom / study.VMinECC)
	return study, nil
}
