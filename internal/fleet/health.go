package fleet

import (
	"context"
	"math/rand/v2"
	"sync"
	"time"

	tlog "hbmvolt/internal/telemetry/log"
)

// breaker is one peer's circuit breaker. It is fed from two sides —
// the active health prober and passive forward outcomes — and answers
// one question: is this peer worth an attempt right now?
//
// States:
//
//   - closed: healthy; every forward may try the peer.
//   - open: the peer accumulated FailureThreshold consecutive failures
//     (or failed its half-open trial); forwards skip straight to local
//     compute until Cooldown elapses. Probes keep running regardless —
//     a successful probe closes the circuit immediately, so recovery
//     does not wait out the cooldown.
//   - half-open: the cooldown elapsed; exactly one trial request is
//     admitted. Its success closes the circuit, its failure re-opens
//     (and restarts the cooldown).
type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	// now is the clock, injectable in tests.
	now func() time.Time

	state       string // "closed" | "open" | "half-open"
	consecutive int
	openedAt    time.Time
}

const (
	circuitClosed   = "closed"
	circuitOpen     = "open"
	circuitHalfOpen = "half-open"
)

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{
		threshold: threshold,
		cooldown:  cooldown,
		now:       time.Now,
		state:     circuitClosed,
	}
}

// Allow reports whether a forward may try the peer, transitioning
// open → half-open once the cooldown has elapsed (the caller then runs
// the single trial).
func (b *breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case circuitClosed:
		return true
	case circuitOpen:
		if b.now().Sub(b.openedAt) >= b.cooldown {
			b.state = circuitHalfOpen
			return true
		}
		return false
	default: // half-open: a trial is already in flight
		return false
	}
}

// Success records a healthy interaction, closing the circuit. It
// reports whether this call performed the open/half-open → closed
// recovery transition (so the caller can log it once).
func (b *breaker) Success() (recovered bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	recovered = b.state != circuitClosed
	b.state = circuitClosed
	b.consecutive = 0
	return recovered
}

// Failure records a failed interaction. The circuit opens when the
// consecutive-failure streak reaches the threshold, or immediately if
// a half-open trial failed. It reports whether this call opened a
// previously non-open circuit.
func (b *breaker) Failure() (opened bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive++
	if b.state == circuitHalfOpen || (b.state == circuitClosed && b.consecutive >= b.threshold) {
		b.state = circuitOpen
		b.openedAt = b.now()
		return true
	}
	return false
}

// State returns the current circuit state.
func (b *breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Snapshot returns the state and the current failure streak.
func (b *breaker) Snapshot() (state string, consecutive int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.consecutive
}

// jitterInterval maps u ∈ [0,1) onto [0.9d, 1.1d): the ±10% spread
// that keeps N daemons started together from probing in lockstep and
// synchronizing their circuit-breaker transitions.
func jitterInterval(d time.Duration, u float64) time.Duration {
	return time.Duration(float64(d) * (0.9 + 0.2*u))
}

// probeLoop is the active health checker: every ProbeInterval
// (jittered ±10% per tick) each peer in the current membership view is
// probed concurrently (one black-holed peer must not delay the
// others' probes) and the outcome feeds its breaker. Peers added at
// runtime are picked up on the next tick.
func (f *Forwarder) probeLoop() {
	defer f.wg.Done()
	timer := time.NewTimer(jitterInterval(f.opts.ProbeInterval, rand.Float64()))
	defer timer.Stop()
	for {
		select {
		case <-f.stopc:
			return
		case <-timer.C:
		}
		var wg sync.WaitGroup
		for _, p := range f.live.Load().peers {
			wg.Add(1)
			go func(p *peer) {
				defer wg.Done()
				f.probe(p)
			}(p)
		}
		wg.Wait()
		timer.Reset(jitterInterval(f.opts.ProbeInterval, rand.Float64()))
	}
}

// probe checks one peer's liveness. A success closes the peer's
// circuit (recovery); a failure counts toward opening it.
func (f *Forwarder) probe(p *peer) {
	p.probes.Add(1)
	ctx, cancel := context.WithTimeout(context.Background(), f.opts.ProbeTimeout)
	defer cancel()
	if _, err := p.client.Health(ctx); err != nil {
		p.probeFailures.Add(1)
		if p.breaker.Failure() {
			f.log().Warn("peer unhealthy; circuit open",
				tlog.F("subsys", "fleet"), tlog.F("peer", p.name), tlog.Err(err))
		}
		return
	}
	if p.breaker.Success() {
		f.log().Info("peer recovered; circuit closed",
			tlog.F("subsys", "fleet"), tlog.F("peer", p.name))
	}
}

// PeerHealth is one peer's entry in the /healthz fleet block.
type PeerHealth struct {
	Peer string `json:"peer"`
	// Circuit is "closed" (healthy), "open" (failing; forwards skip
	// straight to local compute until the cooldown) or "half-open"
	// (cooldown elapsed; one trial in flight).
	Circuit string `json:"circuit"`
	// ConsecutiveFailures is the current failure streak feeding the
	// breaker (reset by any success).
	ConsecutiveFailures int `json:"consecutive_failures"`
	// Probes/ProbeFailures count the active health checker's /healthz
	// probes of this peer.
	Probes        uint64 `json:"probes"`
	ProbeFailures uint64 `json:"probe_failures"`
	// Forwards/ForwardFailures count forward attempts to this peer
	// (failures fail over to the second choice, then local compute).
	Forwards        uint64 `json:"forwards"`
	ForwardFailures uint64 `json:"forward_failures"`
}

// HedgeHealth is the hedged-forwarding block of /healthz: how often a
// slow or failing forward was raced against the second-choice owner,
// and who won.
type HedgeHealth struct {
	// Launched counts hedges started (delay elapsed or primary failed
	// with a viable second choice). Launched = Wins + Losses + Failed
	// once all in-flight hedges settle.
	Launched uint64 `json:"launched"`
	// Wins: the second-choice owner's payload served the request.
	Wins uint64 `json:"wins"`
	// Losses: the primary answered first after the hedge launched.
	Losses uint64 `json:"losses"`
	// Failed: both choices failed and the serve degraded to local.
	Failed uint64 `json:"failed"`
}

// ReplicationHealth is the hot-payload replication block of /healthz.
type ReplicationHealth struct {
	// BudgetBytes is the byte budget for write-through of forwarded
	// payloads to the local durable tier (<0 = replication disabled).
	BudgetBytes int64 `json:"budget_bytes"`
	// Payloads/Bytes count remote payloads admitted within the budget.
	Payloads uint64 `json:"payloads"`
	Bytes    int64  `json:"bytes"`
	// Skipped counts forwarded payloads past the budget (memory-only).
	Skipped uint64 `json:"skipped"`
}

// Health is the /healthz fleet block.
type Health struct {
	// Self is this node's canonical name; Nodes the fleet size
	// (peers + self) in the current membership view.
	Self  string `json:"self"`
	Nodes int    `json:"nodes"`
	// MembershipVersion stamps the copy-on-write membership view; it
	// bumps on every AddPeer/RemovePeer (admin API or -join).
	MembershipVersion uint64 `json:"membership_version"`
	// LocalOwned counts executions this node owned and computed;
	// Forwarded, executions served by a remote peer (hedge wins
	// included); and DegradedServes, remote-owned executions served from
	// local compute because no remote choice was reachable — each
	// byte-identical to what the owner would have returned.
	LocalOwned     uint64 `json:"local_owned"`
	Forwarded      uint64 `json:"forwarded"`
	DegradedServes uint64 `json:"degraded_serves"`
	// Hedge reports the second-choice racing counters.
	Hedge HedgeHealth `json:"hedge"`
	// Replication reports hot-payload replication: forwarded payloads
	// written through to this node's durable cache tier under the byte
	// budget.
	Replication ReplicationHealth `json:"replication"`
	// Peers reports each peer's circuit and counters, sorted by name.
	Peers []PeerHealth `json:"peers"`
}

// Health implements service.Forwarder's /healthz hook.
func (f *Forwarder) Health() any {
	v := f.live.Load()
	h := Health{
		Self:              f.self,
		Nodes:             len(v.nodes),
		MembershipVersion: v.version,
		LocalOwned:        f.localOwned.Load(),
		Forwarded:         f.forwarded.Load(),
		DegradedServes:    f.degraded.Load(),
		Hedge: HedgeHealth{
			Launched: f.hedge.launched.Load(),
			Wins:     f.hedge.wins.Load(),
			Losses:   f.hedge.losses.Load(),
			Failed:   f.hedge.failed.Load(),
		},
		Replication: ReplicationHealth{
			BudgetBytes: f.rep.budget,
			Payloads:    f.rep.payloads.Load(),
			Bytes:       f.rep.bytes.Load(),
			Skipped:     f.rep.skipped.Load(),
		},
	}
	for _, n := range v.nodes {
		p, ok := v.peers[n]
		if !ok {
			continue // self
		}
		state, consecutive := p.breaker.Snapshot()
		h.Peers = append(h.Peers, PeerHealth{
			Peer:                p.name,
			Circuit:             state,
			ConsecutiveFailures: consecutive,
			Probes:              p.probes.Load(),
			ProbeFailures:       p.probeFailures.Load(),
			Forwards:            p.forwards.Load(),
			ForwardFailures:     p.forwardFailures.Load(),
		})
	}
	return h
}
