package lru

import "testing"

func TestByteAndEntryBounds(t *testing.T) {
	c := New[int, string](3, 100)
	if n := c.Add(1, "a", 40); n != 0 {
		t.Fatalf("evicted %d on first insert", n)
	}
	c.Add(2, "b", 40)
	if _, ok := c.Get(1); !ok { // refresh 1; 2 becomes LRU
		t.Fatal("entry 1 missing")
	}
	// Byte pressure evicts the LRU entry (2), not the refreshed one.
	if n := c.Add(3, "c", 60); n != 1 {
		t.Fatalf("evicted %d, want 1", n)
	}
	if _, ok := c.Get(2); ok {
		t.Fatal("entry 2 survived byte-pressure eviction")
	}
	if c.Bytes() != 100 || c.Len() != 2 {
		t.Fatalf("bytes=%d len=%d, want 100/2", c.Bytes(), c.Len())
	}
	// Entry pressure: two tiny inserts trip the 3-entry cap.
	c.Add(4, "d", 1)
	c.Add(5, "e", 1)
	if c.Len() != 3 {
		t.Fatalf("len=%d, want 3 (entry cap)", c.Len())
	}
	// Oversized newest entry survives alone.
	if n := c.Add(6, "f", 1000); n != 3 {
		t.Fatalf("evicted %d, want 3", n)
	}
	if c.Len() != 1 || c.Bytes() != 1000 {
		t.Fatalf("len=%d bytes=%d after oversized insert", c.Len(), c.Bytes())
	}
	// Duplicate Add refreshes, keeps the first value, accounts nothing.
	c.Add(6, "other", 500)
	if v, _ := c.Get(6); v != "f" || c.Bytes() != 1000 {
		t.Fatalf("duplicate add replaced value or re-accounted: %q / %d", v, c.Bytes())
	}
}

func TestRemoveAndOnEvict(t *testing.T) {
	c := New[int, string](2, 0)
	var evicted []int
	c.OnEvict(func(k int, _ string) { evicted = append(evicted, k) })
	c.Add(1, "a", 10)
	c.Add(2, "b", 10)
	// Remove bypasses OnEvict: the caller owns that cleanup.
	if !c.Remove(1) {
		t.Fatal("Remove(1) = false, want true")
	}
	if c.Remove(1) {
		t.Fatal("second Remove(1) = true, want false")
	}
	if c.Len() != 1 || c.Bytes() != 10 {
		t.Fatalf("len=%d bytes=%d after Remove, want 1/10", c.Len(), c.Bytes())
	}
	if len(evicted) != 0 {
		t.Fatalf("Remove invoked OnEvict: %v", evicted)
	}
	// Capacity eviction does invoke it, oldest first.
	c.Add(3, "c", 10)
	c.Add(4, "d", 10)
	if len(evicted) != 1 || evicted[0] != 2 {
		t.Fatalf("OnEvict saw %v, want [2]", evicted)
	}
}

func TestUnboundedDimensions(t *testing.T) {
	c := New[int, int](0, 50) // entries unbounded, bytes bounded
	for i := 0; i < 10; i++ {
		c.Add(i, i, 5)
	}
	if c.Len() != 10 || c.Bytes() != 50 {
		t.Fatalf("len=%d bytes=%d", c.Len(), c.Bytes())
	}
	c.Add(10, 10, 5)
	if c.Len() != 10 {
		t.Fatalf("byte bound did not evict: len=%d", c.Len())
	}
}
