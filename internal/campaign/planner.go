package campaign

// The sweep planner: cross-cell computation sharing for campaigns.
//
// A campaign's cross-products routinely expand into many cells that
// differ only in what they *measure* (pattern sets, batch sizes) while
// describing the same *silicon* (equal fault-model fingerprint) probed
// over the same voltage grid. The physics of such cells — which cells
// are stuck where, per (voltage, port, rep) — is identical; only the
// per-pattern readout differs. The planner makes that sharing explicit:
// it groups a normalized spec's reliability cells by their
// (fingerprint × voltage grid × sampling mode) sub-key, switches them
// to shared-enumeration execution (service.SweepRequest.Shared →
// core.ReliabilityConfig.SharedEnumeration), and schedules each group's
// cells adjacently so the process-wide enumeration memo
// (faults.SharedEnumeration) computes every (voltage, port, rep)
// physics evaluation exactly once across the whole campaign. Per-cell
// results are still normalized, cache-keyed, coalesced and manifested
// exactly as before — the plan only changes how the work is computed,
// never what a cell's payload means.

import (
	"hbmvolt/internal/board"
	"hbmvolt/internal/prf"
	"hbmvolt/internal/service"
)

// PlanGroup is one set of reliability cells sharing their physics
// sub-key: equal fault-model fingerprint, voltage grid and sampling
// mode. Within a group, every (voltage, port, rep) stuck-cell
// enumeration is computed once and reused by all cells and patterns.
type PlanGroup struct {
	// Fingerprint is the group's fault-model config fingerprint (hex,
	// the same rendering the service uses for cache keys).
	Fingerprint string `json:"fingerprint"`
	// Mode is "sparse" or "exact".
	Mode string `json:"mode"`
	// GridPoints is the shared voltage grid's size.
	GridPoints int `json:"grid_points"`
	// Cells lists the member cells as global campaign indices, in
	// campaign order.
	Cells []int `json:"cells"`
	// PatternEvals counts the per-pattern enumeration passes the legacy
	// path would pay for this group: Σ over cells of grid × ports ×
	// batch × patterns.
	PatternEvals int `json:"pattern_evals"`
	// UniquePhysics counts the distinct (voltage, port, rep) stuck-cell
	// enumerations the group actually computes under the plan.
	UniquePhysics int `json:"unique_physics"`
}

// Plan is a campaign's computation-sharing schedule, carried in the
// manifest so a run documents what its throughput was bounded by.
type Plan struct {
	// Groups in first-encounter (campaign) order.
	Groups []PlanGroup `json:"groups"`
	// SharedCells counts reliability cells executing in shared mode.
	SharedCells int `json:"shared_cells"`
	// PatternEvals and UniquePhysics total the per-group counters: the
	// enumeration passes a per-pattern campaign would pay versus the
	// distinct physics evaluations this plan pays.
	PatternEvals  int `json:"pattern_evals"`
	UniquePhysics int `json:"unique_physics"`
}

// physicsKey condenses one cell's physics sub-key, also returning the
// fault-model fingerprint it derives from (so group creation need not
// re-derive the same config).
func physicsKey(req *service.SweepRequest) (key, fingerprint uint64, err error) {
	fcfg, err := board.FaultConfig(board.Config{Seed: req.Seed, Scale: req.Scale})
	if err != nil {
		return 0, 0, err
	}
	fingerprint = fcfg.Fingerprint()
	key = fingerprint
	if req.Exact {
		key = prf.Mix64(key ^ 1)
	}
	for _, v := range req.Grid {
		key = prf.Hash2(key, uint64(int64(v*1e6)))
	}
	return key, fingerprint, nil
}

// planCells groups the expanded cells by physics sub-key. Cells must
// already be normalized; non-reliability cells are left out of every
// group (they share through the analytic rate atlas instead).
func planCells(cells []Cell) (*Plan, error) {
	plan := &Plan{}
	index := map[uint64]int{}
	for i := range cells {
		req := &cells[i].Request
		if req.Kind != service.KindReliability {
			continue
		}
		key, fingerprint, err := physicsKey(req)
		if err != nil {
			return nil, err
		}
		gi, ok := index[key]
		if !ok {
			mode := "sparse"
			if req.Exact {
				mode = "exact"
			}
			gi = len(plan.Groups)
			index[key] = gi
			plan.Groups = append(plan.Groups, PlanGroup{
				Fingerprint: service.FormatKey(fingerprint),
				Mode:        mode,
				GridPoints:  len(req.Grid),
			})
		}
		g := &plan.Groups[gi]
		g.Cells = append(g.Cells, i)
		g.PatternEvals += len(req.Grid) * len(req.Ports) * req.Batch * len(req.Patterns)
		plan.SharedCells++
	}
	for gi := range plan.Groups {
		g := &plan.Groups[gi]
		g.UniquePhysics = g.uniquePhysics(cells)
		plan.PatternEvals += g.PatternEvals
		plan.UniquePhysics += g.UniquePhysics
	}
	return plan, nil
}

// uniquePhysics counts the distinct (voltage, port, rep) enumerations
// of a group: grid points × the union of the members' (port, rep)
// pairs (reps are keyed 0..batch-1, so smaller batches are prefixes of
// larger ones).
func (g *PlanGroup) uniquePhysics(cells []Cell) int {
	type pr struct{ port, rep int }
	pairs := map[pr]bool{}
	for _, ci := range g.Cells {
		req := &cells[ci].Request
		for _, p := range req.Ports {
			for r := 0; r < req.Batch; r++ {
				pairs[pr{p, r}] = true
			}
		}
	}
	return g.GridPoints * len(pairs)
}

// submissionOrder returns the cell indices in planner schedule order:
// each group's cells adjacent (group order, then campaign order inside
// a group), followed by every unplanned cell in campaign order. The
// adjacency keeps a group's enumerations hot in the process-wide memo
// while its cells execute; manifests and artifacts stay in campaign
// order regardless.
func (p *Plan) submissionOrder(n int) []int {
	order := make([]int, 0, n)
	planned := make([]bool, n)
	for _, g := range p.Groups {
		for _, ci := range g.Cells {
			order = append(order, ci)
			planned[ci] = true
		}
	}
	for i := 0; i < n; i++ {
		if !planned[i] {
			order = append(order, i)
		}
	}
	return order
}

// applyPlan switches the planned cells to shared-enumeration execution
// and re-keys them. It operates on a private copy of the expansion so
// a spec's cached cells (shared across runs) are never mutated.
func applyPlan(cells []Cell, plan *Plan) ([]Cell, error) {
	out := append([]Cell(nil), cells...)
	for _, g := range plan.Groups {
		for _, ci := range g.Cells {
			c := &out[ci]
			c.Request.Shared = true
			key, err := c.Request.CacheKey()
			if err != nil {
				return nil, err
			}
			c.Key = key
		}
	}
	return out, nil
}
