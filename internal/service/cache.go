package service

import (
	"sync"

	"hbmvolt/internal/lru"
)

// CacheTier is one storage level of the result cache: a payload store
// keyed by the request cache key. Payload slices are stored and
// returned by reference and must be treated as immutable by all
// parties; by the determinism contract a key's payload never changes,
// so every tier keeps the first write. Implementations are safe for
// concurrent use.
//
// The service ships two tiers — the in-process MemoryTier (LRU) and the
// crash-durable DiskTier — composed memory→disk write-through by the
// manager. The interface is the seam the distributed-fabric roadmap
// item plugs into (a Redis tier is another implementation, not another
// cache).
type CacheTier interface {
	// Get returns the payload for key, refreshing its recency.
	Get(key uint64) ([]byte, bool)
	// Put stores a payload. Storing an existing key refreshes recency
	// only; the stored bytes never change.
	Put(key uint64, payload []byte)
	// Len returns the live entry count.
	Len() int
	// Bytes returns the total payload bytes currently retained.
	Bytes() int64
	// Close flushes and releases the tier. The tier must not be used
	// afterwards.
	Close() error
}

// MemoryTier is the in-process CacheTier: a byte- and entry-bounded LRU
// over payload bytes (internal/lru).
type MemoryTier struct {
	mu  sync.Mutex
	lru *lru.Cache[uint64, []byte]
}

// NewMemoryTier builds a memory tier bounded by entry count and total
// payload bytes.
func NewMemoryTier(capacity int, maxBytes int64) *MemoryTier {
	if capacity < 1 {
		capacity = 1
	}
	if maxBytes < 1 {
		maxBytes = 1
	}
	return &MemoryTier{lru: lru.New[uint64, []byte](capacity, maxBytes)}
}

// Get returns the payload for key, marking it most recently used.
func (t *MemoryTier) Get(key uint64) ([]byte, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lru.Get(key)
}

// Put stores a payload, evicting least recently used entries while the
// entry or byte budget is exceeded.
func (t *MemoryTier) Put(key uint64, payload []byte) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.lru.Add(key, payload, int64(len(payload)))
}

// Len returns the live entry count.
func (t *MemoryTier) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lru.Len()
}

// Bytes returns the total payload bytes currently retained.
func (t *MemoryTier) Bytes() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lru.Bytes()
}

// Close is a no-op for the memory tier.
func (t *MemoryTier) Close() error { return nil }

// resultCache composes the cache tiers memory-first, write-through:
// a Put lands in every tier, a Get walks tiers top-down and promotes a
// lower-tier hit back into the tiers above it, so a payload that
// survived a restart on disk is served from memory from its second
// read on. It also owns the hit/miss accounting /healthz reports.
//
// Eviction pressure is measured in payload bytes (internal/lru),
// uniformly across result kinds: a campaign analytic envelope (a
// faultmap study carries the whole Fig. 4/5/6 atlas) weighs what it
// actually retains, the same way sweep payloads do, rather than
// counting as one entry like a two-point reliability sweep. An
// entry-count bound still applies on top, so a flood of tiny payloads
// cannot grow the index without limit.
type resultCache struct {
	mu sync.Mutex
	// tiers is ordered fastest-first; tiers[0] is always the MemoryTier,
	// tiers[1] (when present) the DiskTier.
	tiers []CacheTier

	hits, misses uint64
	// tierHits[i] counts Gets answered by tiers[i]; tierHits[0] plus
	// Touch events equals memory-tier hits.
	tierHits []uint64
}

func newResultCache(tiers ...CacheTier) *resultCache {
	return &resultCache{tiers: tiers, tierHits: make([]uint64, len(tiers))}
}

// Get returns the payload for key from the fastest tier holding it,
// promoting lower-tier hits into the tiers above.
func (c *resultCache) Get(key uint64) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, tier := range c.tiers {
		payload, ok := tier.Get(key)
		if !ok {
			continue
		}
		for j := 0; j < i; j++ {
			c.tiers[j].Put(key, payload)
		}
		c.hits++
		c.tierHits[i]++
		return payload, true
	}
	c.misses++
	return nil, false
}

// Put stores a payload write-through: every tier receives it, so a
// crash after Put returns loses nothing a restart cannot re-read.
func (c *resultCache) Put(key uint64, payload []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, tier := range c.tiers {
		tier.Put(key, payload)
	}
}

// Touch records a served-from-cache event for a payload that may or may
// not still be resident: resident entries are refreshed, evicted ones
// re-inserted (write-through, so the disk tier re-durables a payload
// that only survived on a completed job). Either way it counts as a
// hit — the caller served the bytes without recomputation, which is
// what the hit counter measures.
func (c *resultCache) Touch(key uint64, payload []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hits++
	for _, tier := range c.tiers {
		tier.Put(key, payload)
	}
}

// Len returns the live entry count of the memory tier.
func (c *resultCache) Len() int { return c.tiers[0].Len() }

// Bytes returns the payload bytes retained by the memory tier.
func (c *resultCache) Bytes() int64 { return c.tiers[0].Bytes() }

// Stats returns cumulative hit/miss counters (hits across all tiers).
func (c *resultCache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// disk returns the disk tier, if one is configured.
func (c *resultCache) disk() (*DiskTier, bool) {
	for _, tier := range c.tiers {
		if d, ok := tier.(*DiskTier); ok {
			return d, true
		}
	}
	return nil, false
}

// diskHits returns the cumulative Gets answered by the disk tier.
func (c *resultCache) diskHits() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.tierHits) > 1 {
		return c.tierHits[1]
	}
	return 0
}

// Close releases every tier (slowest first, so the durable tier's final
// flush happens while the process is still healthy).
func (c *resultCache) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var first error
	for i := len(c.tiers) - 1; i >= 0; i-- {
		if err := c.tiers[i].Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
