package core

import (
	"errors"
	"fmt"

	"hbmvolt/internal/axi"
	"hbmvolt/internal/board"
	"hbmvolt/internal/faults"
	"hbmvolt/internal/hbm"
	"hbmvolt/internal/pattern"
)

// Guardband describes the safe operating region of the device (§III-B).
type Guardband struct {
	// VNom is the nominal supply voltage.
	VNom float64
	// VMin is the minimum safe voltage: the lowest grid point with zero
	// faults.
	VMin float64
	// VCritical is the minimum voltage at which the device responds.
	VCritical float64
	// Fraction is (VNom - VMin) / VNom; the paper reports ~19%.
	Fraction float64
	// SafeSavings is the power saving available inside the guardband,
	// (VNom/VMin)².
	SafeSavings float64
}

// String summarizes the region.
func (g Guardband) String() string {
	return fmt.Sprintf("guardband %.2fV→%.2fV (%.1f%% of nominal, %.2fx safe savings); V_critical %.2fV",
		g.VNom, g.VMin, g.Fraction*100, g.SafeSavings, g.VCritical)
}

// FindGuardband locates V_min analytically: the lowest grid voltage at
// which the expected device-wide fault count is zero.
func FindGuardband(fm *faults.Model) (Guardband, error) {
	if fm == nil {
		return Guardband{}, errors.New("core: fault model is nil")
	}
	g := Guardband{VNom: faults.VNom, VCritical: faults.VCritical}
	vmin := faults.VNom
	for _, v := range faults.PaperGrid() {
		if fm.GlobalStuckFraction(v) > 0 {
			break
		}
		vmin = v
	}
	g.VMin = vmin
	g.Fraction = (g.VNom - g.VMin) / g.VNom
	g.SafeSavings = (g.VNom / g.VMin) * (g.VNom / g.VMin)
	return g, nil
}

// MeasureGuardband locates V_min empirically, running the fill/check
// test on every port at each voltage step until the first observed
// fault, exactly as the paper's bring-up procedure does. wordsPerPort
// bounds the per-step work (0 = full pseudo channels); grid is the
// descending ladder to scan (nil = the full paper grid).
func MeasureGuardband(b *board.Board, wordsPerPort uint64, grid []float64) (Guardband, error) {
	if b == nil {
		return Guardband{}, errors.New("core: board is nil")
	}
	if wordsPerPort == 0 {
		wordsPerPort = b.Org.WordsPerPC
	}
	if grid == nil {
		grid = faults.PaperGrid()
	}
	g := Guardband{VNom: faults.VNom, VCritical: faults.VCritical}
	vmin := faults.VNom
	defer func() {
		_ = b.SetHBMVoltage(faults.VNom)
	}()
	for _, v := range grid {
		if err := b.SetHBMVoltage(v); err != nil {
			return g, err
		}
		if b.Crashed() {
			if err := b.PowerCycle(); err != nil {
				return g, err
			}
			break
		}
		clean := true
		for _, pat := range []pattern.Pattern{pattern.AllOnes(), pattern.AllZeros()} {
			for port := 0; port < hbm.MaxPorts && clean; port++ {
				tg := b.TGs[port]
				tg.Port().SetEnabled(true)
				if err := tg.Reset(); err != nil {
					return g, err
				}
				st, err := tg.Run(axi.FillCheckProgram(pat, 0, wordsPerPort))
				if err != nil {
					return g, err
				}
				if st.Flips.Total() > 0 {
					clean = false
				}
			}
			if !clean {
				break
			}
		}
		if !clean {
			break
		}
		vmin = v
	}
	g.VMin = vmin
	g.Fraction = (g.VNom - g.VMin) / g.VNom
	g.SafeSavings = (g.VNom / g.VMin) * (g.VNom / g.VMin)
	return g, nil
}
