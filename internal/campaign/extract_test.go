package campaign

import (
	"os"
	"path/filepath"
	"testing"

	"hbmvolt/internal/service"
)

func TestDecodeArtifactAndEnvelopes(t *testing.T) {
	dir := filepath.Join("..", "..", "testdata", "campaign", "paper-repro-smoke")
	cases := []struct {
		artifact string
		kind     string
	}{
		{"fig2-power.ndjson", service.KindPower},
		{"faultmap.ndjson", service.KindFaultMap},
		{"ecc-mitigation.ndjson", service.KindECCStudy},
		{"algorithm1.ndjson", service.KindReliability},
	}
	res := &Result{Spec: Spec{Name: "paper-repro"}}
	for _, tc := range cases {
		data, err := os.ReadFile(filepath.Join(dir, tc.artifact))
		if err != nil {
			t.Fatalf("reading golden artifact: %v", err)
		}
		envs, err := DecodeArtifact(data)
		if err != nil {
			t.Fatalf("DecodeArtifact(%s): %v", tc.artifact, err)
		}
		if len(envs) == 0 {
			t.Fatalf("DecodeArtifact(%s): no envelopes", tc.artifact)
		}
		sr := ScenarioResult{Name: tc.artifact, Kind: tc.kind}
		for i, env := range envs {
			if env.Kind != tc.kind {
				t.Errorf("%s line %d: kind %q, want %q", tc.artifact, i+1, env.Kind, tc.kind)
			}
			// Exactly one typed result must be populated, matching Kind.
			set := 0
			if env.Reliability != nil {
				set++
			}
			if env.Power != nil {
				set++
			}
			if env.FaultMap != nil {
				set++
			}
			if env.ECC != nil {
				set++
			}
			if set != 1 {
				t.Errorf("%s line %d: %d typed results set, want exactly 1", tc.artifact, i+1, set)
			}
			// Rebuild a Result cell so (*Result).Envelopes is exercised on
			// the same payload bytes.
			sr.Cells = append(sr.Cells, CellResult{
				Cell:    Cell{Scenario: tc.artifact, Index: i},
				Payload: payloadLine(t, data, i),
			})
		}
		res.Scenarios = append(res.Scenarios, sr)
	}

	all, err := res.Envelopes()
	if err != nil {
		t.Fatalf("Envelopes: %v", err)
	}
	total := 0
	for _, sr := range res.Scenarios {
		total += len(sr.Cells)
	}
	if len(all) != total {
		t.Fatalf("Envelopes returned %d entries, want %d", len(all), total)
	}

	rel, err := res.EnvelopesByKind(service.KindReliability)
	if err != nil {
		t.Fatal(err)
	}
	if len(rel) == 0 {
		t.Fatal("EnvelopesByKind(reliability) empty")
	}
	for _, ce := range rel {
		if ce.Envelope.Kind != service.KindReliability || ce.Envelope.Reliability == nil {
			t.Fatalf("EnvelopesByKind returned %q for scenario %s", ce.Envelope.Kind, ce.Scenario)
		}
	}

	if _, err := DecodeArtifact([]byte("{not json}\n")); err == nil {
		t.Fatal("DecodeArtifact accepted malformed NDJSON")
	}
}

// payloadLine extracts the i-th NDJSON line, newline included, the way
// WriteArtifacts concatenates payloads.
func payloadLine(t *testing.T, data []byte, i int) []byte {
	t.Helper()
	start := 0
	for n := 0; start < len(data); n++ {
		end := start
		for end < len(data) && data[end] != '\n' {
			end++
		}
		if end < len(data) {
			end++
		}
		if n == i {
			return data[start:end]
		}
		start = end
	}
	t.Fatalf("artifact has no line %d", i)
	return nil
}
