package fleet

import (
	"context"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hbmvolt/internal/chaos"
	"hbmvolt/internal/service"
)

// testNode is one in-process fleet member: a real service server on a
// real TCP listener, its manager routed through a Forwarder.
type testNode struct {
	url string
	srv *service.Server
	fwd *Forwarder
	hs  *http.Server
}

// kill closes the node's listener and server: connections to it refuse
// from now on, exactly like a dead process.
func (n *testNode) kill() { n.hs.Close() }

// listenN opens n loopback listeners and returns them with their base
// URLs, so the fleet's peer lists are known before any node exists.
func listenN(t *testing.T, n int) ([]net.Listener, []string) {
	t.Helper()
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	return lns, urls
}

// startNodes brings up an n-node fleet. Every node gets the same peer
// list (its own URL included — New dedupes), short forward timeouts,
// and no active prober unless tune adds one.
func startNodes(t *testing.T, n int, tune func(i int, o *Options)) []*testNode {
	t.Helper()
	lns, urls := listenN(t, n)
	return startNodesOn(t, lns, urls, tune, nil)
}

// startNodesOn builds one fleet node per pre-opened listener, each
// serving the sweep API plus the membership admin API (the same mux
// shape the daemon mounts). svcCfg, when non-nil, tunes each node's
// service config (e.g. a CacheDir for replication tests).
func startNodesOn(t *testing.T, lns []net.Listener, urls []string, tune func(i int, o *Options), svcCfg func(i int, c *service.Config)) []*testNode {
	t.Helper()
	nodes := make([]*testNode, len(lns))
	for i := range nodes {
		o := Options{
			Self:           urls[i],
			Peers:          urls,
			ForwardTimeout: 2 * time.Second,
			PollInterval:   2 * time.Millisecond,
		}
		if tune != nil {
			tune(i, &o)
		}
		fwd, err := New(o)
		if err != nil {
			t.Fatal(err)
		}
		cfg := service.Config{Workers: 2, QueueDepth: 64, Forwarder: fwd}
		if svcCfg != nil {
			svcCfg(i, &cfg)
		}
		srv, err := service.Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		mux := http.NewServeMux()
		mux.Handle("/v1/fleet/peers", fwd.AdminHandler())
		mux.Handle("/", srv)
		hs := &http.Server{Handler: mux}
		ln := lns[i]
		go hs.Serve(ln)
		nodes[i] = &testNode{url: urls[i], srv: srv, fwd: fwd, hs: hs}
		t.Cleanup(func() {
			hs.Close()
			srv.Close()
			fwd.Close()
		})
	}
	return nodes
}

// smallReq is a milliseconds-scale reliability sweep; distinct seeds
// give distinct cache keys, which rendezvous hashing spreads across
// the fleet.
func smallReq(seed uint64) service.SweepRequest {
	return service.SweepRequest{
		Kind: service.KindReliability, Seed: seed, Scale: 1024,
		Ports: []int{0}, Patterns: []string{"all1"},
		Grid: []float64{0.90}, Batch: 1,
	}
}

// keyOf normalizes and keys a request the way the manager will.
func keyOf(t *testing.T, req service.SweepRequest) uint64 {
	t.Helper()
	if err := req.Normalize(); err != nil {
		t.Fatal(err)
	}
	key, err := req.CacheKey()
	if err != nil {
		t.Fatal(err)
	}
	return key
}

// seedOwnedBy finds a seed whose request key the forwarder routes to
// owner. Keys are deterministic, so the found seed is stable.
func seedOwnedBy(t *testing.T, f *Forwarder, owner string) uint64 {
	t.Helper()
	for seed := uint64(0); seed < 4096; seed++ {
		if f.Owner(keyOf(t, smallReq(seed))) == owner {
			return seed
		}
	}
	t.Fatalf("no seed in [0,4096) owned by %s", owner)
	return 0
}

// localPayload computes req on a standalone single-node manager — the
// byte-identity reference every fleet serve must match.
func localPayload(t *testing.T, req service.SweepRequest) []byte {
	t.Helper()
	mgr := service.NewManager(service.Config{Workers: 1})
	defer mgr.Close()
	j, _, _, err := mgr.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if st, err := j.Wait(context.Background()); err != nil || st != service.StateDone {
		t.Fatalf("reference compute: %v, %v", st, err)
	}
	return j.Payload()
}

func TestNormalizeNode(t *testing.T) {
	good := map[string]string{
		"http://10.0.0.1:8023":    "http://10.0.0.1:8023",
		"https://node-a:8023/":    "https://node-a:8023",
		"  http://host:1 ":        "http://host:1",
		"http://127.0.0.1:8023//": "http://127.0.0.1:8023",
	}
	for in, want := range good {
		got, err := normalizeNode(in)
		if err != nil || got != want {
			t.Errorf("normalizeNode(%q) = %q, %v; want %q", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "node-a:8023", "ftp://x", "http://", "http://h:1/path", "http://h:1?q=1"} {
		if got, err := normalizeNode(bad); err == nil {
			t.Errorf("normalizeNode(%q) = %q, want error", bad, got)
		}
	}
}

// TestOwnerAgreementAndSpread pins the routing invariants: every node
// computes the same owner for every key (no coordination needed), and
// ownership spreads over all nodes rather than collapsing onto one.
func TestOwnerAgreementAndSpread(t *testing.T) {
	urls := []string{"http://n1:1", "http://n2:1", "http://n3:1"}
	fwds := make([]*Forwarder, len(urls))
	for i, u := range urls {
		f, err := New(Options{Self: u, Peers: urls})
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		fwds[i] = f
	}
	counts := map[string]int{}
	for key := uint64(0); key < 3000; key++ {
		owner := fwds[0].Owner(key * 0x9e3779b97f4a7c15)
		for _, f := range fwds[1:] {
			if got := f.Owner(key * 0x9e3779b97f4a7c15); got != owner {
				t.Fatalf("key %d: %s says %s, %s says %s", key, fwds[0].Self(), owner, f.Self(), got)
			}
		}
		counts[owner]++
	}
	for _, u := range urls {
		if counts[u] < 300 {
			t.Fatalf("owner spread %v: node %s owns under 10%%", counts, u)
		}
	}
}

// TestOwnerStableUnderNodeLoss pins the rendezvous property the
// degradation story depends on: removing a node reassigns only that
// node's keys — every surviving owner keeps exactly what it had.
func TestOwnerStableUnderNodeLoss(t *testing.T) {
	urls := []string{"http://n1:1", "http://n2:1", "http://n3:1"}
	full, err := New(Options{Self: urls[0], Peers: urls})
	if err != nil {
		t.Fatal(err)
	}
	defer full.Close()
	reduced, err := New(Options{Self: urls[0], Peers: urls[:2]})
	if err != nil {
		t.Fatal(err)
	}
	defer reduced.Close()
	for key := uint64(0); key < 3000; key++ {
		k := key * 0x9e3779b97f4a7c15
		before := full.Owner(k)
		if before == urls[2] {
			continue // the lost node's keys may move anywhere
		}
		if after := reduced.Owner(k); after != before {
			t.Fatalf("key %x moved %s → %s although its owner survived", k, before, after)
		}
	}
}

func TestBreakerTransitions(t *testing.T) {
	b := newBreaker(2, time.Minute)
	clock := time.Unix(1000, 0)
	b.now = func() time.Time { return clock }

	if !b.Allow() || b.State() != circuitClosed {
		t.Fatal("new breaker must be closed")
	}
	b.Failure()
	if b.State() != circuitClosed {
		t.Fatal("one failure under threshold 2 must not open")
	}
	if opened := b.Failure(); !opened || b.State() != circuitOpen {
		t.Fatal("second consecutive failure must open")
	}
	if b.Allow() {
		t.Fatal("open circuit within cooldown must not allow")
	}
	clock = clock.Add(2 * time.Minute)
	if !b.Allow() || b.State() != circuitHalfOpen {
		t.Fatal("cooldown elapsed: one half-open trial must be allowed")
	}
	if b.Allow() {
		t.Fatal("half-open admits exactly one trial")
	}
	if opened := b.Failure(); !opened || b.State() != circuitOpen {
		t.Fatal("failed trial must re-open")
	}
	clock = clock.Add(2 * time.Minute)
	if !b.Allow() {
		t.Fatal("second cooldown elapsed")
	}
	if recovered := b.Success(); !recovered || b.State() != circuitClosed {
		t.Fatal("successful trial must close")
	}
	if _, consecutive := b.Snapshot(); consecutive != 0 {
		t.Fatal("success must reset the failure streak")
	}
}

// TestBreakerHalfOpenAdmitsOneTrial races concurrent forwards against
// a breaker whose cooldown just elapsed: exactly one caller may win
// the half-open trial slot, no matter how the goroutines interleave.
// (Run under -race: the transition is a read-check-write that must be
// atomic under the breaker's lock.)
func TestBreakerHalfOpenAdmitsOneTrial(t *testing.T) {
	for round := 0; round < 50; round++ {
		b := newBreaker(1, time.Minute)
		clock := time.Unix(1000, 0)
		var mu sync.Mutex
		b.now = func() time.Time { mu.Lock(); defer mu.Unlock(); return clock }
		b.Failure() // threshold 1: open immediately
		mu.Lock()
		clock = clock.Add(2 * time.Minute) // cooldown elapsed: next Allow goes half-open
		mu.Unlock()

		const forwards = 8
		var admitted atomic.Int32
		var wg sync.WaitGroup
		start := make(chan struct{})
		for i := 0; i < forwards; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				if b.Allow() {
					admitted.Add(1)
				}
			}()
		}
		close(start)
		wg.Wait()
		if n := admitted.Load(); n != 1 {
			t.Fatalf("round %d: %d concurrent forwards admitted %d trials, want exactly 1", round, forwards, n)
		}
		if b.State() != circuitHalfOpen {
			t.Fatalf("round %d: state = %q, want half-open with the trial in flight", round, b.State())
		}
	}
}

// TestForwardToOwner pins the fabric's happy path: a cell submitted to
// a non-owner is computed exactly once, on its owner, and the bytes
// match a standalone single-node compute.
func TestForwardToOwner(t *testing.T) {
	nodes := startNodes(t, 2, nil)
	seed := seedOwnedBy(t, nodes[0].fwd, nodes[1].url)
	req := smallReq(seed)
	want := localPayload(t, req)

	j, _, _, err := nodes[0].srv.Manager().Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if st, err := j.Wait(t.Context()); err != nil || st != service.StateDone {
		t.Fatalf("Wait = %v, %v", st, err)
	}
	if string(j.Payload()) != string(want) {
		t.Fatal("forwarded payload differs from single-node compute")
	}
	if info := j.ServeInfo(); info.ServedBy != nodes[1].url || info.Degraded {
		t.Fatalf("ServeInfo = %+v, want served by owner %s, not degraded", info, nodes[1].url)
	}
	if runs := nodes[0].srv.Manager().Runs(); runs != 0 {
		t.Fatalf("receiving node ran %d sweeps locally, want 0 (owner computes)", runs)
	}
	if runs := nodes[1].srv.Manager().Runs(); runs != 1 {
		t.Fatalf("owner ran %d sweeps, want 1", runs)
	}
	h := nodes[0].fwd.Health().(Health)
	if h.Forwarded != 1 || h.DegradedServes != 0 {
		t.Fatalf("health = %+v, want 1 forwarded, 0 degraded", h)
	}
}

// TestDegradeWhenOwnerDown kills the owner first, then submits: the
// receiving node must serve the identical bytes from local compute and
// mark the serve degraded, in status fields and response headers both.
func TestDegradeWhenOwnerDown(t *testing.T) {
	nodes := startNodes(t, 2, func(i int, o *Options) {
		o.ForwardTimeout = 500 * time.Millisecond
	})
	seed := seedOwnedBy(t, nodes[0].fwd, nodes[1].url)
	req := smallReq(seed)
	want := localPayload(t, req)

	nodes[1].kill()
	j, _, _, err := nodes[0].srv.Manager().Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if st, err := j.Wait(t.Context()); err != nil || st != service.StateDone {
		t.Fatalf("Wait = %v, %v", st, err)
	}
	if string(j.Payload()) != string(want) {
		t.Fatal("degraded payload differs from single-node compute: degradation must be byte-identical")
	}
	if info := j.ServeInfo(); info.ServedBy != nodes[0].url || !info.Degraded {
		t.Fatalf("ServeInfo = %+v, want degraded local serve", info)
	}
	h := nodes[0].fwd.Health().(Health)
	if h.DegradedServes != 1 {
		t.Fatalf("health = %+v, want 1 degraded serve", h)
	}

	// The fallback is observable on the wire: served-by + degraded
	// headers on the result, body still byte-identical.
	resp, err := http.Get(nodes[0].url + "/v1/sweeps/" + j.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != string(want) {
		t.Fatal("HTTP result body differs")
	}
	if resp.Header.Get(service.HeaderServedBy) != nodes[0].url {
		t.Fatalf("served-by header = %q, want %s", resp.Header.Get(service.HeaderServedBy), nodes[0].url)
	}
	if resp.Header.Get(service.HeaderDegraded) != "true" {
		t.Fatal("degraded serve must carry the degraded header")
	}
}

// TestCircuitOpensAfterConsecutiveFailures pins passive breaker
// feeding: with the owner dead and threshold 2, the first two
// submissions attempt (and fail) the forward; once open, later
// submissions skip the attempt entirely and degrade immediately.
func TestCircuitOpensAfterConsecutiveFailures(t *testing.T) {
	nodes := startNodes(t, 2, func(i int, o *Options) {
		o.ForwardTimeout = 300 * time.Millisecond
		o.FailureThreshold = 2
		o.Cooldown = time.Hour
	})
	owner := nodes[1].url
	nodes[1].kill()
	mgr := nodes[0].srv.Manager()

	var seeds []uint64
	for seed := uint64(0); len(seeds) < 3 && seed < 4096; seed++ {
		if nodes[0].fwd.Owner(keyOf(t, smallReq(seed))) == owner {
			seeds = append(seeds, seed)
		}
	}
	for _, seed := range seeds {
		j, _, _, err := mgr.Submit(smallReq(seed))
		if err != nil {
			t.Fatal(err)
		}
		if st, err := j.Wait(t.Context()); err != nil || st != service.StateDone {
			t.Fatalf("seed %d: %v, %v", seed, st, err)
		}
	}
	if state, err := nodes[0].fwd.PeerState(owner); err != nil || state != circuitOpen {
		t.Fatalf("peer state = %q, %v; want open", state, err)
	}
	h := nodes[0].fwd.Health().(Health)
	if h.DegradedServes != 3 {
		t.Fatalf("degraded = %d, want 3", h.DegradedServes)
	}
	// Attempts stopped once the circuit opened: 2 failures, not 3.
	if h.Peers[0].Forwards != 2 || h.Peers[0].ForwardFailures != 2 {
		t.Fatalf("peer counters = %+v, want 2 forwards / 2 failures (third skipped open-circuit)", h.Peers[0])
	}
}

// TestProbeRecoveryClosesCircuit drives the active health checker
// through an outage: injected connection-refusals open the circuit,
// and the first healthy probe — not a forward — closes it again.
func TestProbeRecoveryClosesCircuit(t *testing.T) {
	plan := chaos.NewPlan().Set("fleet.test.probe", chaos.Fault{HTTP: chaos.HTTPRefuse, Count: 4})
	defer chaos.Activate(plan)()
	nodes := startNodes(t, 2, func(i int, o *Options) {
		o.HTTPClient = &http.Client{Transport: &chaos.Transport{Site: "fleet.test.probe"}}
		if i == 0 {
			o.ProbeInterval = 10 * time.Millisecond
			o.ProbeTimeout = 300 * time.Millisecond
			o.FailureThreshold = 2
			o.Cooldown = time.Hour // recovery must come from the probe, not the cooldown
		}
	})
	owner := nodes[1].url

	waitState := func(want string) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			state, err := nodes[0].fwd.PeerState(owner)
			if err != nil {
				t.Fatal(err)
			}
			if state == want {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("peer stuck in %q, want %q", state, want)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitState(circuitOpen)   // refused probes accumulate to the threshold
	waitState(circuitClosed) // chaos window exhausted: a probe succeeds and closes

	h := nodes[0].fwd.Health().(Health)
	if h.Peers[0].Probes < 4 || h.Peers[0].ProbeFailures < 2 {
		t.Fatalf("probe counters = %+v, want >=4 probes with >=2 failures", h.Peers[0])
	}
}

// TestForwardedRequestsNeverReforward pins the loop guard: a
// submission carrying the forwarded-once marker executes locally even
// though the key's owner is a remote peer.
func TestForwardedRequestsNeverReforward(t *testing.T) {
	nodes := startNodes(t, 2, nil)
	seed := seedOwnedBy(t, nodes[0].fwd, nodes[1].url)
	req := smallReq(seed)

	j, _, _, err := nodes[0].srv.Manager().SubmitOpts(req, service.SubmitOptions{NoForward: true})
	if err != nil {
		t.Fatal(err)
	}
	if st, err := j.Wait(t.Context()); err != nil || st != service.StateDone {
		t.Fatalf("Wait = %v, %v", st, err)
	}
	if runs := nodes[0].srv.Manager().Runs(); runs != 1 {
		t.Fatalf("receiving node ran %d sweeps, want 1 (pinned local)", runs)
	}
	h := nodes[0].fwd.Health().(Health)
	if h.Forwarded != 0 || h.DegradedServes != 0 {
		t.Fatalf("health = %+v, want no forward activity", h)
	}
	if info := j.ServeInfo(); info.ServedBy != nodes[0].url || info.Degraded {
		t.Fatalf("ServeInfo = %+v, want plain local serve", info)
	}
}

// TestSelfExcludedAndDeduped: every node can ship the identical -peers
// value; New drops self and duplicates from the peer set.
func TestSelfExcludedAndDeduped(t *testing.T) {
	f, err := New(Options{
		Self:  "http://n1:1",
		Peers: []string{"http://n1:1", "http://n2:1", "http://n2:1/", "http://n3:1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if nodes := f.Nodes(); len(nodes) != 3 {
		t.Fatalf("nodes = %v, want 3 distinct", nodes)
	}
	if _, err := f.PeerState("http://n1:1"); err == nil {
		t.Fatal("self must not be a peer")
	}
}
