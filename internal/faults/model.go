// Package faults models reduced-voltage-induced bit faults in HBM DRAM.
//
// It is the empirical core of the reproduction: a stochastic cell model
// calibrated against every quantitative observation in Nabavi Larimi et
// al. (DATE 2021). Each bit cell has a critical voltage V_c drawn from a
// mixture of a clustered "weak" population (governing the exponential
// fault growth between 0.97 V and 0.86 V, with strong per-PC process
// variation) and a shared Gaussian "bulk" population (governing the
// collapse at 0.85-0.84 V). A cell whose supply drops below its V_c is
// stuck at 0 or stuck at 1; monotonicity in voltage is guaranteed by
// construction.
//
// The same survival functions feed two evaluation paths:
//
//   - the analytic path (analytic.go) computes exact expectations for
//     full-size memories, used to regenerate the paper's figures;
//   - the sampling path (Sampler) draws per-bit faults deterministically
//     from a seed, used by the simulated device under Algorithm 1.
//
// Tests assert that the two paths agree within Poisson confidence bounds.
package faults

import (
	"fmt"
	"math"

	"hbmvolt/internal/pattern"
	"hbmvolt/internal/prf"
)

// Geometry describes the address layout of one pseudo channel as the
// fault model needs it. It mirrors internal/hbm's organization but is
// passed explicitly so the two packages stay decoupled.
type Geometry struct {
	// WordsPerPC is the number of 256-bit words per pseudo channel
	// (8M for the paper's 256 MB PCs).
	WordsPerPC uint64
	// WordsPerRow is the number of 256-bit words per DRAM row (32 for a
	// 1 KB row).
	WordsPerRow uint64
}

// DefaultGeometry matches the paper's platform: 256 MB pseudo channels
// with 1 KB rows.
var DefaultGeometry = Geometry{WordsPerPC: 8 << 20, WordsPerRow: 32}

// RowsPerPC returns the number of rows in one pseudo channel.
func (g Geometry) RowsPerPC() uint64 {
	if g.WordsPerRow == 0 {
		return 0
	}
	return g.WordsPerPC / g.WordsPerRow
}

// BitsPerPC returns the number of bit cells in one pseudo channel.
func (g Geometry) BitsPerPC() float64 {
	return float64(g.WordsPerPC) * 256
}

// PCProfile captures the process-variation parameters of one pseudo
// channel.
type PCProfile struct {
	// WeakMult scales the weak-population survival function; >1 is more
	// fault-prone than the calibration median, <1 less.
	WeakMult float64
	// ClusterFraction is the fraction of the PC's rows covered by weak
	// clusters.
	ClusterFraction float64
	// ClusterCount is the number of cluster regions placed.
	ClusterCount int
}

// Config assembles a fault model.
type Config struct {
	// Seed determines every random aspect of the device (cluster
	// placement, per-cell critical voltages, polarities).
	Seed uint64
	// Temperature in °C; the paper characterizes at 35 °C.
	Temperature float64
	// Geometry of each pseudo channel.
	Geometry Geometry
	// Profiles holds per-PC variation (index = stack*16 + pc). Zero-value
	// entries are replaced by the calibrated defaults.
	Profiles [NumPCs]PCProfile
	// SparseEnumeration switches samplers from the bit-exact per-cell
	// draw to the sparse O(#faults) enumeration: per-row fault counts and
	// positions are drawn directly (keyed on seed, PC, row, batch rep and
	// voltage), so range scans cost proportional to the faults they
	// contain instead of the bits they cover. The two modes realize different (but statistically
	// identical) devices; sampling tests assert both agree with the
	// analytic expectations within Poisson bounds. Leave false for
	// bit-reproducible per-cell fault maps.
	SparseEnumeration bool
}

// DefaultConfig returns the calibrated configuration reproducing the
// paper's device.
func DefaultConfig() Config {
	cfg := Config{
		Seed:        1,
		Temperature: TempRef,
		Geometry:    DefaultGeometry,
	}
	for i := range cfg.Profiles {
		cfg.Profiles[i] = PCProfile{
			WeakMult:        defaultWeakMult[i],
			ClusterFraction: defaultClusterFraction,
			ClusterCount:    defaultClusterCount,
		}
	}
	return cfg
}

// Model is an immutable, deterministic fault model for the two-stack HBM
// device. It is safe for concurrent use.
type Model struct {
	cfg        Config
	clusters   [NumPCs]clusterSet
	coverage   [NumPCs]float64
	tempWeak   float64 // multiplicative temperature factor on weak survival
	bulkMuT    float64 // temperature-adjusted bulk knee
	weakVcMaxT float64 // temperature-adjusted weak truncation point
	// atlas memoizes the analytic rates, shared process-wide among models
	// with the same config fingerprint (see atlas.go).
	atlas *rateAtlas
}

// New builds a Model from cfg, filling zero-valued profile fields with
// the calibrated defaults.
func New(cfg Config) (*Model, error) {
	if cfg.Temperature == 0 {
		cfg.Temperature = TempRef
	}
	if cfg.Geometry.WordsPerPC == 0 {
		cfg.Geometry = DefaultGeometry
	}
	if cfg.Geometry.WordsPerRow == 0 {
		return nil, fmt.Errorf("faults: WordsPerRow must be positive")
	}
	if cfg.Geometry.WordsPerPC%cfg.Geometry.WordsPerRow != 0 {
		return nil, fmt.Errorf("faults: WordsPerPC (%d) not a multiple of WordsPerRow (%d)",
			cfg.Geometry.WordsPerPC, cfg.Geometry.WordsPerRow)
	}
	for i := range cfg.Profiles {
		p := &cfg.Profiles[i]
		if p.WeakMult == 0 {
			p.WeakMult = defaultWeakMult[i]
		}
		if p.WeakMult < 0 {
			return nil, fmt.Errorf("faults: PC%d WeakMult negative", i)
		}
		if p.ClusterFraction == 0 {
			p.ClusterFraction = defaultClusterFraction
		}
		if p.ClusterFraction < 0 || p.ClusterFraction > 1 {
			return nil, fmt.Errorf("faults: PC%d ClusterFraction %v out of [0,1]", i, p.ClusterFraction)
		}
		if p.ClusterCount == 0 {
			p.ClusterCount = defaultClusterCount
		}
	}
	m := &Model{
		cfg:        cfg,
		tempWeak:   math.Exp(tempWeakLnCoeff * (cfg.Temperature - TempRef)),
		bulkMuT:    bulkMu + tempBulkShiftPerC*(cfg.Temperature-TempRef),
		weakVcMaxT: weakVcMax + tempTailShiftPerC*(cfg.Temperature-TempRef),
	}
	rows := cfg.Geometry.RowsPerPC()
	for i := range m.clusters {
		p := cfg.Profiles[i]
		m.clusters[i] = buildClusters(cfg.Seed, i/PCsPerStack, i%PCsPerStack, rows, p.ClusterFraction, p.ClusterCount)
		m.coverage[i] = m.clusters[i].coverage(rows)
	}
	m.atlas = atlasFor(m.cfg.Fingerprint())
	return m, nil
}

// MustNew is New but panics on error; for use with known-good configs in
// examples and benchmarks.
func MustNew(cfg Config) *Model {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Config returns the (default-filled) configuration the model was built
// from.
func (m *Model) Config() Config { return m.cfg }

// Fingerprint returns the analytic-rate cache key of this model's
// configuration (see Config.Fingerprint). Two models with equal
// fingerprints realize identical expected rates at every voltage, which
// is what makes the fingerprint usable as a result-cache key for sweep
// services: equal fingerprints plus equal sweep parameters imply
// bit-identical sweep outcomes.
func (m *Model) Fingerprint() uint64 { return m.cfg.Fingerprint() }

// Geometry returns the per-PC geometry.
func (m *Model) Geometry() Geometry { return m.cfg.Geometry }

// pcIndex folds (stack, pc) into the global profile index.
func pcIndex(stack, pc int) int { return stack*PCsPerStack + pc }

// weakSurvival is the base (multiplier-1, 35 °C) weak-population survival
// P(V_c > v), log-linear below the anchor and truncated above weakVcMax.
func weakSurvival(v float64) float64 {
	if v >= weakVcMax {
		return 0
	}
	s := weakAnchorRate * math.Pow(10, weakSlopeDecades*(weakAnchorV-v)/VStep)
	if s > 1 {
		return 1
	}
	return s
}

// weakSurvivalT is the model's weak survival with its temperature-
// shifted truncation point: hotter parts have weak cells with higher
// critical voltages, eroding the guardband.
func (m *Model) weakSurvivalT(v float64) float64 {
	if v >= m.weakVcMaxT {
		return 0
	}
	s := weakAnchorRate * math.Pow(10, weakSlopeDecades*(weakAnchorV-v)/VStep)
	if s > 1 {
		return 1
	}
	return s
}

// bulkSurvival is the shared Gaussian bulk survival at the model's
// temperature.
func (m *Model) bulkSurvival(v float64) float64 {
	if v >= bulkCutoff {
		return 0
	}
	return 0.5 * math.Erfc((v-m.bulkMuT)/(bulkSigma*math.Sqrt2))
}

// weakLocal is the in-cluster weak survival of one PC: the PC-averaged
// weak rate concentrated into the covered fraction of its rows.
func (m *Model) weakLocal(idx int, v float64) float64 {
	cov := m.coverage[idx]
	if cov == 0 {
		return 0
	}
	s := m.cfg.Profiles[idx].WeakMult * m.tempWeak * m.weakSurvivalT(v) / cov
	if s > 1 {
		return 1
	}
	return s
}

// cellSurvival returns the stuck probability of a cell at voltage v, for
// cells inside and outside clusters of PC idx.
func (m *Model) cellSurvival(idx int, v float64, inCluster bool) float64 {
	s := m.bulkSurvival(v)
	if inCluster {
		s += m.weakLocal(idx, v)
		if s > 1 {
			s = 1
		}
	}
	return s
}

// Polarity of a stuck cell.
type Polarity uint8

const (
	// StuckAt0 cells read 0 regardless of the written value (1→0 flips).
	StuckAt0 Polarity = iota
	// StuckAt1 cells read 1 regardless of the written value (0→1 flips).
	StuckAt1
)

// String implements fmt.Stringer.
func (p Polarity) String() string {
	if p == StuckAt0 {
		return "stuck-at-0"
	}
	return "stuck-at-1"
}

// CellFault describes one stuck bit within a 256-bit word.
type CellFault struct {
	Bit      int
	Polarity Polarity
}

// JitterMV is the metastability band of marginal cells: across repeated
// test runs, a cell whose critical voltage sits within ~±0.5 mV of the
// supply may or may not misbehave. This is what makes the paper's
// repeated batches (and its error/confidence methodology) meaningful;
// batch repetitions with different rep values observe slightly different
// fault sets.
const JitterMV = 0.5

// Sampler draws the stuck cells of one pseudo channel at one fixed
// voltage. Thresholds are precomputed so the per-bit test is a hash plus
// an integer compare. A Sampler is immutable and safe for concurrent use.
type Sampler struct {
	m           *Model
	idx         int
	seed        uint64
	wordsPerRow uint64
	v           float64
	// vbits keys the sparse-mode draws on the sampled voltage (exact bit
	// pattern; grid builders produce identical float64s for equal grid
	// points), so every draw site is a pure function of
	// (seed, PC, row/segment, rep, voltage) and evaluation order — in
	// particular the order a sharded sweep visits voltage points — can
	// never change a realization.
	vbits uint64
	// thresholds (scaled to uint64) for cells outside / inside clusters
	outStuck, outTail uint64
	inStuck, inTail   uint64
	anyFaults         bool
	clusterOnly       bool
	// sparse selects the O(#faults) enumeration mode (Config.SparseEnumeration).
	sparse bool
	// batch jitter: per-cell choice among {lo, mid, hi} thresholds
	jitter       bool
	rep          uint64
	outLo, outHi uint64
	inLo, inHi   uint64
}

// scale64 converts a probability to a uint64 threshold.
func scale64(p float64) uint64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return math.MaxUint64
	}
	return uint64(p * float64(1<<63) * 2)
}

// NewSampler prepares a per-bit fault sampler for (stack, pc) at supply
// voltage v, without batch jitter (the time-averaged fault set).
func (m *Model) NewSampler(stack, pc int, v float64) *Sampler {
	return m.newSampler(stack, pc, v, false, 0)
}

// NewBatchSampler prepares a sampler for one batch repetition: marginal
// cells within ±JitterMV of their critical voltage resolve differently
// per rep, modelling run-to-run metastability.
func (m *Model) NewBatchSampler(stack, pc int, v float64, rep uint64) *Sampler {
	return m.newSampler(stack, pc, v, true, rep)
}

func (m *Model) newSampler(stack, pc int, v float64, jitter bool, rep uint64) *Sampler {
	idx := pcIndex(stack, pc)
	sOut := m.cellSurvival(idx, v, false)
	sIn := m.cellSurvival(idx, v, true)
	// Tail thresholds select the always-stuck-at-0 cells (V_c above
	// polarityTailV). Clamped to the stuck threshold for v > tail.
	tOut := math.Min(sOut, m.cellSurvival(idx, polarityTailV, false))
	tIn := math.Min(sIn, m.cellSurvival(idx, polarityTailV, true))
	s := &Sampler{
		m:           m,
		idx:         idx,
		seed:        m.cfg.Seed,
		wordsPerRow: m.cfg.Geometry.WordsPerRow,
		v:           v,
		vbits:       math.Float64bits(v),
		outStuck:    scale64(sOut),
		outTail:     scale64(tOut),
		inStuck:     scale64(sIn),
		inTail:      scale64(tIn),
		anyFaults:   sOut > 0 || sIn > 0,
		sparse:      m.cfg.SparseEnumeration,
		jitter:      jitter,
		rep:         rep,
	}
	if jitter {
		d := JitterMV / 1000
		s.outLo = scale64(m.cellSurvival(idx, v+d, false))
		s.outHi = scale64(m.cellSurvival(idx, v-d, false))
		s.inLo = scale64(m.cellSurvival(idx, v+d, true))
		s.inHi = scale64(m.cellSurvival(idx, v-d, true))
		s.anyFaults = s.anyFaults || s.outHi > 0 || s.inHi > 0
	}
	// A region whose scaled thresholds are all zero can never win a
	// draw, so out-of-cluster words are provably clean exactly when both
	// out thresholds are zero — a sharper (but draw-identical) test than
	// comparing float survivals, and the property that lets range scans
	// skip every row outside the weak clusters.
	outDead := s.outStuck == 0 && (!jitter || s.outHi == 0)
	inLive := s.inStuck > 0 || (jitter && s.inHi > 0)
	s.clusterOnly = outDead && inLive
	return s
}

// WordFaults appends the stuck cells of word addr (a word index within
// the pseudo channel) to dst and returns it. On the bit-exact path the
// result is deterministic and monotone in voltage: every fault present
// at voltage v is present at every voltage below v. In sparse mode the
// word's faults come from the same per-row draws RangeFaults uses, so
// single-word reads and bulk range checks observe one consistent device.
func (s *Sampler) WordFaults(addr uint64, dst []CellFault) []CellFault {
	if !s.anyFaults {
		return dst
	}
	if s.sparse {
		s.sparseRange(addr, 1, func(_ uint64, f CellFault) {
			dst = append(dst, f)
		})
		return dst
	}
	s.wordFaults(addr, func(_ uint64, f CellFault) {
		dst = append(dst, f)
	})
	return dst
}

// wordFaults runs the bit-exact per-cell draw for one word, yielding
// each stuck cell in bit order.
func (s *Sampler) wordFaults(addr uint64, visit func(addr uint64, f CellFault)) {
	inCluster := s.m.clusters[s.idx].contains(addr / s.wordsPerRow)
	if s.clusterOnly && !inCluster {
		return
	}
	stuck, tail := s.outStuck, s.outTail
	lo, hi := s.outLo, s.outHi
	if inCluster {
		stuck, tail = s.inStuck, s.inTail
		lo, hi = s.inLo, s.inHi
	}
	// No jitter branch can exceed max(stuck, hi), so a draw at or above
	// it is clean on every branch — the hot early-out that keeps the
	// per-bit cost at one SplitMix round for clean cells.
	maxThr := stuck
	if s.jitter && hi > maxThr {
		maxThr = hi
	}
	if maxThr == 0 {
		return
	}
	base := prf.Mix64(prf.Hash3(s.seed^saltVc, uint64(s.idx), addr))
	for bit := 0; bit < 256; bit++ {
		u := prf.Mix64(base ^ uint64(bit))
		if u >= maxThr {
			continue
		}
		thr := stuck
		if s.jitter {
			// Marginal cells see a per-(cell, rep) effective voltage
			// within ±JitterMV: 25% low, 50% nominal, 25% high.
			j := prf.Hash5(s.seed^saltJitter, uint64(s.idx), addr, uint64(bit), s.rep)
			switch j & 3 {
			case 0:
				thr = lo
			case 1:
				thr = hi
			}
		}
		if u >= thr {
			continue
		}
		pol := StuckAt0
		if u >= tail {
			// Below the tail the polarity is an independent stable draw.
			pu := prf.Hash4(s.seed^saltPol, uint64(s.idx), addr, uint64(bit))
			if prf.Float64(pu) < pStuckAt1 {
				pol = StuckAt1
			}
		}
		visit(addr, CellFault{Bit: bit, Polarity: pol})
	}
}

// RangeFaults visits every stuck cell in the word-address window
// [start, start+count), in ascending (address, bit) order. On the
// bit-exact path it walks only the rows that can hold faults — when the
// supply is above the bulk knee that is just the precomputed weak-cluster
// ranges, so clean regions cost nothing. In sparse mode it enumerates
// the per-row draws directly and costs O(#faults in the window).
func (s *Sampler) RangeFaults(start, count uint64, visit func(addr uint64, f CellFault)) {
	if count == 0 || !s.anyFaults {
		return
	}
	if s.sparse {
		s.sparseRange(start, count, visit)
		return
	}
	end := start + count
	if !s.clusterOnly {
		for a := start; a < end; a++ {
			s.wordFaults(a, visit)
		}
		return
	}
	wpr := s.wordsPerRow
	for _, r := range s.m.clusters[s.idx].ranges {
		lo, hi := r.Lo*wpr, r.Hi*wpr
		if lo < start {
			lo = start
		}
		if hi > end {
			hi = end
		}
		for a := lo; a < hi; a++ {
			s.wordFaults(a, visit)
		}
	}
}

// RangeFaultWords groups RangeFaults by word: visit receives each
// faulted word address once, with its stuck cells in bit order. The
// slice is reused between calls; copy it to retain.
func (s *Sampler) RangeFaultWords(start, count uint64, visit func(addr uint64, fs []CellFault)) {
	g := grouper{visit: visit}
	s.RangeFaults(start, count, g.add)
	g.flush()
}

// grouper converts a flat (addr, fault) stream into per-word batches.
type grouper struct {
	visit  func(addr uint64, fs []CellFault)
	buf    []CellFault
	cur    uint64
	active bool
}

func (g *grouper) add(addr uint64, f CellFault) {
	if g.active && addr != g.cur {
		g.visit(g.cur, g.buf)
		g.buf = g.buf[:0]
	}
	g.cur = addr
	g.active = true
	g.buf = append(g.buf, f)
}

func (g *grouper) flush() {
	if g.active {
		g.visit(g.cur, g.buf)
		g.buf = g.buf[:0]
		g.active = false
	}
}

// Overlay applies stuck-cell faults to a stored word, producing what a
// read returns.
func Overlay(w pattern.Word, fs []CellFault) pattern.Word {
	for _, f := range fs {
		if f.Polarity == StuckAt0 {
			w = w.SetBit(f.Bit, 0)
		} else {
			w = w.SetBit(f.Bit, 1)
		}
	}
	return w
}

// MightFault reports whether any cell of the sampled PC can be stuck at
// this sampler's voltage; false means reads are guaranteed clean.
func (s *Sampler) MightFault() bool { return s.anyFaults }

// InCluster reports whether the given word address lies inside a weak
// cluster of the sampled PC.
func (s *Sampler) InCluster(addr uint64) bool {
	return s.m.clusters[s.idx].contains(addr / s.wordsPerRow)
}

// ClusterRanges returns the merged weak-cluster row ranges of (stack,pc)
// as [lo,hi) pairs, for reporting.
func (m *Model) ClusterRanges(stack, pc int) [][2]uint64 {
	rs := m.clusters[pcIndex(stack, pc)].Ranges()
	out := make([][2]uint64, len(rs))
	for i, r := range rs {
		out[i] = [2]uint64{r.Lo, r.Hi}
	}
	return out
}

// ClusterCoverage returns the fraction of (stack,pc)'s rows covered by
// weak clusters.
func (m *Model) ClusterCoverage(stack, pc int) float64 {
	return m.coverage[pcIndex(stack, pc)]
}
